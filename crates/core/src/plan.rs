//! The public FBMPK planning/execution API.
//!
//! Mirrors the library structure the paper describes: preprocessing
//! (split + ABMC reorder) is a one-off cost captured in the plan and
//! amortized over many kernel invocations (paper §V-F); each invocation
//! then runs the forward–backward pipeline. Inputs and outputs are always
//! in the *original* row numbering; the plan permutes in and out
//! internally.

use crate::kernel::{run_fbmpk_probed, triangle_reads};
use crate::layout::{BtbXy, SplitXy};
use crate::levelblock::{probe_llc_bytes, BlockingMode, LevelBlockPlan};
use crate::schedule::{Schedule, SyncCtx, SyncMode};
use crate::sink::{AccumSink, CollectSink, NullSink, Sink};
use crate::{FbmpkError, Result};
use fbmpk_obs::recorder::{Span, SpanKind};
use fbmpk_obs::{NoopProbe, Probe, Recorder, SpanProbe, DEFAULT_SPAN_CAPACITY};
use fbmpk_parallel::{BlockFlags, ThreadPool};
use fbmpk_reorder::{Abmc, AbmcParams, BlockDeps};
use fbmpk_sparse::{Csr, Permutation, TriangularSplit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Storage layout for the two live iterates (paper §III-C, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VectorLayout {
    /// One interleaved `2n` array (the paper's BtB optimization).
    #[default]
    BackToBack,
    /// Two independent arrays (the plain "FB" ablation variant).
    Split,
}

/// In-kernel observability options (see the `fbmpk-obs` crate).
///
/// Off by default: the kernels are then monomorphized with the no-op
/// probe and carry zero instrumentation. When `record` is on, the plan
/// owns a per-thread span [`Recorder`] and every `power`/`krylov`/
/// `sspmv`/`symgs_sweep` call appends phase-level compute and wait spans
/// to it; results are bit-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsOptions {
    /// Record per-thread spans during kernel execution.
    pub record: bool,
    /// Per-thread span buffer capacity (spans past it are counted as
    /// dropped, never reallocated mid-kernel).
    pub span_capacity: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions { record: false, span_capacity: DEFAULT_SPAN_CAPACITY }
    }
}

impl ObsOptions {
    /// Recording enabled at the default capacity.
    pub fn recording() -> Self {
        ObsOptions { record: true, ..Default::default() }
    }
}

/// What to do when the stall watchdog fires during a point-to-point
/// invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Surface the stall as [`FbmpkError::Stalled`] and let the caller
    /// decide.
    #[default]
    Error,
    /// Transparently re-execute the invocation under the per-color
    /// barrier schedule (which carries no cross-block flag waits, so a
    /// lost or delayed flag publish cannot recur), record the
    /// degradation, and return the fallback's result. Panics are never
    /// retried — a deterministic panic would just fire again.
    ColorBarrier,
}

/// Stall-watchdog deadline used when neither
/// [`FbmpkOptions::watchdog_ms`] nor the `FBMPK_WATCHDOG_MS` environment
/// variable overrides it.
pub const DEFAULT_WATCHDOG_MS: u64 = 10_000;

/// Resolves the effective watchdog deadline: an explicit option wins,
/// then `FBMPK_WATCHDOG_MS`, then [`DEFAULT_WATCHDOG_MS`]. `0` disables
/// the deadline (waits still observe the poison latch).
fn resolved_watchdog_ms(opt: Option<u64>) -> u64 {
    match opt {
        Some(ms) => ms,
        None => std::env::var("FBMPK_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_WATCHDOG_MS),
    }
}

/// Structural input validation runs in debug builds always, and in
/// release builds when `FBMPK_VALIDATE` is set (to anything but `0`).
pub(crate) fn validate_inputs_enabled() -> bool {
    cfg!(debug_assertions) || std::env::var_os("FBMPK_VALIDATE").is_some_and(|v| v != "0")
}

/// Plan construction options.
#[derive(Debug, Clone, Copy)]
pub struct FbmpkOptions {
    /// Worker threads. `1` runs the serial pipeline of §III-B.
    pub nthreads: usize,
    /// ABMC reordering parameters. Required when `nthreads > 1`; optional
    /// (locality-only) for serial runs.
    pub reorder: Option<AbmcParams>,
    /// Iterate-pair layout.
    pub layout: VectorLayout,
    /// Apply a reverse Cuthill–McKee pass *before* ABMC blocking. RCM
    /// compacts the bandwidth (paper §II-C cites it as the standard
    /// locality reordering), which both tightens the gather window and
    /// tends to reduce the quotient-graph color count on irregular inputs.
    /// Only meaningful together with `reorder`.
    pub pre_rcm: bool,
    /// Intra-sweep synchronization: barrier per color, or barrier-free
    /// point-to-point block waits (see [`SyncMode`]). Bit-identical
    /// results either way; point-to-point wins when colors are many or
    /// narrow.
    pub sync: SyncMode,
    /// Pin pool workers to cores at startup (best-effort; see
    /// [`fbmpk_parallel::affinity`]). Only applies to pools created by
    /// [`FbmpkPlan::new`] — [`FbmpkPlan::with_pool`] keeps the caller's
    /// pool as-is.
    pub pin_threads: bool,
    /// NUMA-aware first-touch placement of the kernel buffers and the
    /// per-triangle CSR arrays: on parallel plans, pool workers fault in
    /// equal contiguous shares of each allocation so its pages land on
    /// the memory node of a worker that will stream them (workers pin
    /// node-locally under `pin_threads`; see
    /// [`fbmpk_parallel::numa::NumaTopology`]). Off by default. Results
    /// are bit-identical either way — only page placement changes — and
    /// serial plans ignore the flag entirely.
    pub numa_first_touch: bool,
    /// In-kernel observability (off by default — zero overhead).
    pub obs: ObsOptions,
    /// Stall-watchdog deadline for point-to-point waits, in milliseconds.
    /// `None` defers to `FBMPK_WATCHDOG_MS` / [`DEFAULT_WATCHDOG_MS`];
    /// `Some(0)` disables the deadline (waits still observe the poison
    /// latch, so a peer's panic always unblocks them).
    pub watchdog_ms: Option<u64>,
    /// What to do when the watchdog fires (see [`FallbackPolicy`]).
    pub fallback: FallbackPolicy,
    /// Memory traversal of the power kernels: the streaming
    /// forward–backward pipeline, or BFS-shell level blocking that holds a
    /// band of shells in cache across `tile_powers` consecutive powers
    /// (see [`BlockingMode`]). Level blocking pays a BFS preprocessing
    /// pass and denser synchronization; it wins when the matrix greatly
    /// exceeds the LLC and `k >= 4`.
    pub blocking: BlockingMode,
    /// Address for the Prometheus text-exposition endpoint (port `0`
    /// picks a free port; the bound address is logged to stderr). `None`
    /// defers to the `FBMPK_METRICS_ADDR` environment variable; with
    /// neither set there is no endpoint, no live telemetry, and zero
    /// overhead. Setting an address implies span recording
    /// ([`ObsOptions::record`]) so wait fractions are observable. The
    /// endpoint is process-global: the first plan to request one binds
    /// it, later plans join it.
    pub metrics_addr: Option<std::net::SocketAddr>,
}

impl Default for FbmpkOptions {
    fn default() -> Self {
        FbmpkOptions {
            nthreads: 1,
            reorder: None,
            layout: VectorLayout::default(),
            pre_rcm: false,
            sync: SyncMode::default(),
            pin_threads: false,
            numa_first_touch: false,
            obs: ObsOptions::default(),
            watchdog_ms: None,
            fallback: FallbackPolicy::default(),
            blocking: BlockingMode::default(),
            metrics_addr: None,
        }
    }
}

impl FbmpkOptions {
    /// Parallel configuration with default ABMC parameters.
    pub fn parallel(nthreads: usize) -> Self {
        FbmpkOptions { nthreads, reorder: Some(AbmcParams::default()), ..Default::default() }
    }
}

/// One-off preprocessing costs (paper Fig. 11 normalizes these to SpMV
/// invocations).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanStats {
    /// Seconds spent computing and applying the ABMC ordering.
    pub reorder_seconds: f64,
    /// Seconds spent splitting `A = L + D + U`.
    pub split_seconds: f64,
    /// Number of ABMC colors (0 when unordered).
    pub ncolors: usize,
    /// Number of ABMC blocks (0 when unordered).
    pub nblocks: usize,
}

/// Point-to-point synchronization state: per-block wait lists plus the
/// epoch flag table the sweeps mark and poll.
struct P2pState {
    deps: BlockDeps,
    flags: BlockFlags,
}

/// A prepared FBMPK executor.
pub struct FbmpkPlan {
    split: TriangularSplit,
    perm: Option<Permutation>,
    schedule: Schedule,
    pool: Arc<ThreadPool>,
    layout: VectorLayout,
    sync: SyncMode,
    blocking: BlockingMode,
    levelblock: Option<LevelBlockPlan>,
    p2p: Option<P2pState>,
    recorder: Option<Arc<Recorder>>,
    stats: PlanStats,
    n: usize,
    watchdog_ms: u64,
    fallback: FallbackPolicy,
    numa_first_touch: bool,
    /// Times a stalled point-to-point invocation was re-executed under
    /// the barrier schedule (the `ColorBarrier` fallback policy). Shared
    /// with the live-telemetry collector, which may outlive neither but
    /// must not borrow the plan.
    fallbacks: Arc<AtomicU64>,
    /// Scrape-time collector for the live exposition endpoint; `None`
    /// unless an endpoint is attached at plan build.
    telemetry: Option<Arc<crate::telemetry::PlanTelemetry>>,
}

impl FbmpkPlan {
    /// Builds a plan: optional ABMC reorder, triangular split, colored
    /// schedule, worker pool.
    ///
    /// # Errors
    /// [`FbmpkError::NotSquare`] for rectangular input;
    /// [`FbmpkError::ParallelNeedsReorder`] when `nthreads > 1` without
    /// `reorder`.
    pub fn new(a: &Csr, options: FbmpkOptions) -> Result<Self> {
        Self::with_pool(
            a,
            options,
            Arc::new(ThreadPool::with_affinity(options.nthreads, options.pin_threads)),
        )
    }

    /// Like [`FbmpkPlan::new`] but reusing an existing pool (whose size
    /// must equal `options.nthreads`).
    pub fn with_pool(a: &Csr, options: FbmpkOptions, pool: Arc<ThreadPool>) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(FbmpkError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        if options.nthreads == 0 || pool.nthreads() != options.nthreads {
            return Err(FbmpkError::BadLength { expected: options.nthreads, got: pool.nthreads() });
        }
        if options.nthreads > 1 && options.reorder.is_none() {
            return Err(FbmpkError::ParallelNeedsReorder);
        }
        // Structural validation of untrusted input (sorted in-bounds
        // columns, monotone row pointers, finite values): always in debug
        // builds, opt-in via FBMPK_VALIDATE in release.
        if validate_inputs_enabled() {
            a.validate()?;
        }
        let _build_span = fbmpk_obs::phases::span("plan.build");
        let n = a.nrows();
        let mut stats = PlanStats::default();
        // `working` is only needed to build the split; avoid cloning the
        // input in the unreordered path.
        let (working, perm, abmc): (std::borrow::Cow<Csr>, _, _) = match options.reorder {
            Some(params) => {
                let _span = fbmpk_obs::phases::span("plan.reorder");
                let t0 = Instant::now();
                // Optional RCM locality pre-pass, composed with ABMC.
                let (pre_matrix, pre_perm) = if options.pre_rcm {
                    let rcm = fbmpk_reorder::rcm(a);
                    let m =
                        rcm.permute_symmetric(a).expect("RCM permutation matches matrix dimension");
                    (m, Some(rcm))
                } else {
                    (a.clone(), None)
                };
                let abmc = Abmc::new(&pre_matrix, params);
                let permuted = abmc.apply(&pre_matrix);
                stats.reorder_seconds = t0.elapsed().as_secs_f64();
                stats.ncolors = abmc.ncolors();
                stats.nblocks = abmc.nblocks();
                let total = match pre_perm {
                    Some(rcm) => rcm.then(abmc.permutation()),
                    None => abmc.permutation().clone(),
                };
                (std::borrow::Cow::Owned(permuted), Some(total), Some(abmc))
            }
            None => (std::borrow::Cow::Borrowed(a), None, None),
        };
        let t0 = Instant::now();
        let split = {
            let _span = fbmpk_obs::phases::span("plan.split");
            let mut s = TriangularSplit::split(&working)?;
            if options.numa_first_touch && options.nthreads > 1 {
                s = first_touch_split(&pool, s);
            }
            s
        };
        stats.split_seconds = t0.elapsed().as_secs_f64();
        // Level-blocked mode preprocesses the working (permuted) matrix
        // into BFS shells once, amortized like the reorder itself.
        let levelblock = match options.blocking {
            BlockingMode::Streaming => None,
            BlockingMode::LevelBlocked { tile_powers } => Some(LevelBlockPlan::new(
                &working,
                options.nthreads,
                tile_powers,
                probe_llc_bytes(),
            )),
        };
        let schedule = {
            let _span = fbmpk_obs::phases::span("plan.schedule");
            match &abmc {
                Some(abmc) => Schedule::colored(abmc, &split, options.nthreads),
                None => Schedule::serial(n),
            }
        };
        debug_assert!(schedule.validate().is_ok());
        let watchdog_ms = resolved_watchdog_ms(options.watchdog_ms);
        let p2p = match options.sync {
            SyncMode::ColorBarrier => None,
            SyncMode::PointToPoint => {
                // Derive the wait lists from the same (ordering, split)
                // pair the schedule was built from; the serial fallback
                // has one barrier-free block with nothing to wait on.
                let deps = match &abmc {
                    Some(abmc) => BlockDeps::build(abmc, &split),
                    None => BlockDeps::trivial(schedule.nblocks()),
                };
                debug_assert!(deps.validate().is_ok());
                let mut flags = BlockFlags::new(schedule.nblocks());
                // Wire the flag waits into the pool's fault runtime: they
                // observe the poison latch, report to the progress table,
                // and time out after the watchdog deadline.
                flags.attach_runtime(
                    Arc::clone(pool.poison()),
                    Arc::clone(pool.progress()),
                    watchdog_ms,
                );
                Some(P2pState { deps, flags })
            }
        };
        // Live-telemetry endpoint: an explicit option or FBMPK_METRICS_ADDR
        // binds the process-global exposition listener (idempotent) and
        // implies span recording so wait fractions are scrape-able.
        let metrics_on = match crate::telemetry::resolved_metrics_addr(options.metrics_addr) {
            Some(addr) => crate::telemetry::ensure_endpoint(addr).is_some(),
            None => false,
        };
        let recorder = if options.obs.record || metrics_on {
            Some(Arc::new(Recorder::new(options.nthreads, options.obs.span_capacity)))
        } else {
            None
        };
        let fallbacks = Arc::new(AtomicU64::new(0));
        let telemetry = if metrics_on || fbmpk_obs::live::enabled() {
            // Placement ground truth for the PR 7 first-touch claim: where
            // did the pages of the kernel arrays actually land? Only
            // queried when first touch ran (otherwise placement is
            // whatever the allocating thread's node was) and only at plan
            // build — it is a property of the allocations, not of runs.
            let numa_placement = if options.numa_first_touch && options.nthreads > 1 {
                collect_numa_placement(&pool, &split, n)
            } else {
                Vec::new()
            };
            Some(crate::telemetry::PlanTelemetry::register(
                options.nthreads,
                recorder.clone(),
                Arc::clone(&fallbacks),
                numa_placement,
            ))
        } else {
            None
        };
        Ok(FbmpkPlan {
            split,
            perm,
            schedule,
            pool,
            layout: options.layout,
            sync: options.sync,
            blocking: options.blocking,
            levelblock,
            p2p,
            recorder,
            stats,
            n,
            watchdog_ms,
            fallback: options.fallback,
            numa_first_touch: options.numa_first_touch,
            fallbacks,
            telemetry,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Worker count.
    pub fn nthreads(&self) -> usize {
        self.pool.nthreads()
    }

    /// Preprocessing statistics.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// The ABMC permutation, if the plan reorders.
    pub fn permutation(&self) -> Option<&Permutation> {
        self.perm.as_ref()
    }

    /// The triangular split the kernels run on (in permuted numbering when
    /// the plan reorders).
    pub fn split(&self) -> &TriangularSplit {
        &self.split
    }

    /// The worker pool (shared with other kernels, e.g. SYMGS).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// The colored (or trivial serial) schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The configured iterate-pair layout.
    pub fn layout(&self) -> VectorLayout {
        self.layout
    }

    /// The configured sweep synchronization mode.
    pub fn sync_mode(&self) -> SyncMode {
        self.sync
    }

    /// The configured memory-traversal mode.
    pub fn blocking_mode(&self) -> BlockingMode {
        self.blocking
    }

    /// The level-blocking state (shells, band sizing), when the plan runs
    /// level-blocked.
    pub fn level_block(&self) -> Option<&LevelBlockPlan> {
        self.levelblock.as_ref()
    }

    /// The per-block dependency lists, when the plan runs point-to-point.
    pub fn block_deps(&self) -> Option<&BlockDeps> {
        self.p2p.as_ref().map(|s| &s.deps)
    }

    /// The span recorder, when [`ObsOptions::record`] was set. Spans
    /// accumulate across kernel invocations until [`Recorder::reset`].
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Modeled bytes of matrix data streamed by one `Aᵏx₀` invocation —
    /// the quantity the paper's ⌈(k+1)/2⌉-reads claim is about, priced
    /// for this split: each triangle traversal streams 12 bytes per
    /// stored nonzero (8-byte value + 4-byte column index) plus the
    /// `8(n+1)`-byte row-pointer array, and the diagonal (`8n` bytes)
    /// rides along once per `L` traversal (forward sweeps and the tail
    /// both touch it; the head and backward sweeps run on `U` alone).
    ///
    /// Divide measured wall time into this to get effective bandwidth;
    /// compare against `fbmpk-memsim`'s simulated DRAM traffic to get
    /// the traffic-vs-model ratio.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn modeled_matrix_bytes(&self, k: usize) -> u64 {
        let (l_reads, u_reads) = triangle_reads(k);
        let n = self.n as u64;
        let tri_bytes = |nnz: u64| 12 * nnz + 8 * (n + 1);
        let l_bytes = tri_bytes(self.split.lower.nnz() as u64) + 8 * n;
        let u_bytes = tri_bytes(self.split.upper.nnz() as u64);
        l_reads as u64 * l_bytes + u_reads as u64 * u_bytes
    }

    /// The schedule's block row boundaries: block `b` covers permuted
    /// rows `block_row_start()[b]..block_row_start()[b + 1]`.
    pub fn block_row_start(&self) -> &[usize] {
        &self.schedule.block_row_start
    }

    /// The color each global block executes under ([`Span::NO_ID`] never
    /// appears: every block belongs to exactly one color).
    pub fn block_color(&self) -> Vec<u32> {
        let mut colors = vec![Span::NO_ID; self.schedule.nblocks()];
        for (c, threads) in self.schedule.blocks.iter().enumerate() {
            for range in threads {
                for b in range.clone() {
                    colors[b] = c as u32;
                }
            }
        }
        colors
    }

    /// Per-block shapes of this plan's split along the schedule's block
    /// boundaries — the modeled ledger's decomposition inputs.
    pub fn block_shapes(&self) -> Vec<crate::model::BlockShape> {
        crate::model::block_shapes(&self.split, &self.schedule.block_row_start)
    }

    /// [`Self::modeled_matrix_bytes`] decomposed per block; sums back to
    /// the whole-matrix figure exactly.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn modeled_block_bytes(&self, k: usize) -> Vec<u64> {
        crate::model::fbmpk_block_matrix_bytes(&self.block_shapes(), k)
    }

    /// [`Self::modeled_matrix_bytes`] decomposed per (power, block):
    /// `out[p - 1][b]` — see
    /// [`crate::model::fbmpk_block_power_matrix_bytes`] for the phase →
    /// power billing. Sums back to the whole-matrix figure exactly.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn modeled_block_power_bytes(&self, k: usize) -> Vec<Vec<u64>> {
        crate::model::fbmpk_block_power_matrix_bytes(&self.block_shapes(), k)
    }

    /// [`Self::try_power`] with a caller-supplied [`Probe`] threaded into
    /// the sweeps — the hook the measured attribution ledger uses to
    /// sample hardware counters at block boundaries. The plan's own
    /// recorder (if any) is bypassed for this invocation; fallback and
    /// permutation semantics match [`Self::try_power`].
    pub fn power_probed<P: Probe>(&self, x0: &[f64], k: usize, probe: &P) -> Result<Vec<f64>> {
        assert_eq!(x0.len(), self.n, "x0 length mismatch");
        if k == 0 {
            return Ok(x0.to_vec());
        }
        let xp = self.permute_in(x0);
        let result =
            self.with_fallback(|sync| self.execute_probed(&xp, k, &NullSink, sync, probe))?;
        Ok(self.permute_out(result))
    }

    /// The synchronization context the kernels run under.
    pub(crate) fn sync_ctx(&self) -> SyncCtx<'_> {
        match &self.p2p {
            Some(s) => SyncCtx::PointToPoint { deps: &s.deps, flags: &s.flags },
            None => SyncCtx::Barrier,
        }
    }

    /// The effective stall-watchdog deadline in milliseconds (0 when
    /// disabled).
    pub fn watchdog_ms(&self) -> u64 {
        self.watchdog_ms
    }

    /// Re-arms the point-to-point stall deadline for *subsequent*
    /// invocations (`0` disables it) and returns the deadline that was in
    /// effect. Returns `None` on barrier-sync plans: they have no block
    /// flag waits to watch, so a mid-run deadline cannot be enforced and
    /// the call is a no-op. A wait already in its slow path keeps the
    /// deadline it started with, so callers sharing one plan across
    /// requests must serialize invocations around the override.
    pub fn set_watchdog_ms(&self, ms: u64) -> Option<u64> {
        self.p2p.as_ref().and_then(|s| s.flags.set_deadline_ms(ms))
    }

    /// The configured watchdog fallback policy.
    pub fn fallback_policy(&self) -> FallbackPolicy {
        self.fallback
    }

    /// How many invocations fell back to the barrier schedule after a
    /// stall (only ever nonzero under [`FallbackPolicy::ColorBarrier`]).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Whether a stalled invocation can be retried on the barrier
    /// schedule: point-to-point mode with the `ColorBarrier` policy.
    pub(crate) fn can_fallback(&self) -> bool {
        self.p2p.is_some() && self.fallback == FallbackPolicy::ColorBarrier
    }

    /// Runs `attempt` under the plan's own sync context; when it stalls
    /// and the policy allows, re-runs it once under the barrier schedule.
    ///
    /// The closure must rebuild all per-attempt state (output buffers,
    /// accumulating sinks) itself — a stalled attempt leaves its buffers
    /// partially written. Only [`FbmpkError::Stalled`] triggers the
    /// retry: the barrier schedule publishes no block flags, so a lost or
    /// delayed flag publish cannot recur there, whereas a panic would.
    pub(crate) fn with_fallback<T>(
        &self,
        mut attempt: impl FnMut(&SyncCtx) -> Result<T>,
    ) -> Result<T> {
        match attempt(&self.sync_ctx()) {
            Ok(v) => Ok(v),
            Err(e @ FbmpkError::Stalled { .. }) if self.can_fallback() => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.note_fault(&e, true);
                attempt(&SyncCtx::Barrier)
            }
            Err(e) => {
                self.note_fault(&e, false);
                Err(e)
            }
        }
    }

    /// Records a fault into the recorder (zero-duration `Poison`/
    /// `Watchdog` marker span) and, when falling back, echoes the
    /// diagnostic dump to stderr — the error value is consumed by the
    /// retry, so this is its only escape hatch.
    pub(crate) fn note_fault(&self, e: &FbmpkError, falling_back: bool) {
        if falling_back {
            eprintln!("fbmpk: {e}\nfbmpk: retrying under the ColorBarrier schedule");
        }
        let Some(rec) = &self.recorder else { return };
        let (kind, thread, color, block, detail) = match e {
            FbmpkError::Stalled { thread, block, waited_ms, .. } => (
                SpanKind::Watchdog,
                *thread,
                Span::NO_ID,
                *block as u32,
                (*waited_ms).min(u32::MAX as u64) as u32,
            ),
            FbmpkError::WorkerPanicked { thread, color, block, .. } => (
                SpanKind::Poison,
                *thread,
                color.unwrap_or(Span::NO_ID),
                block.unwrap_or(Span::NO_ID),
                0,
            ),
            _ => return,
        };
        let now = rec.now_ns();
        let t = thread.min(rec.nthreads() - 1);
        // SAFETY: the kernel invocation already returned, so no worker is
        // recording; this thread transiently owns every lane.
        unsafe {
            rec.record(t, Span { kind, color, block, detail, start_ns: now, end_ns: now });
        }
    }

    /// Error-path bookkeeping for callers that bypass
    /// [`Self::with_fallback`] (the in-place SYMGS sweep).
    pub(crate) fn note_outcome<T>(&self, r: &Result<T>) {
        if let Err(e) = r {
            self.note_fault(e, false);
        }
    }

    /// Computes `Aᵏ x₀`.
    ///
    /// Allocates working buffers per call for convenience; hot loops
    /// (solvers calling once per iteration) should use
    /// [`FbmpkPlan::power_with`] with a reused [`crate::Workspace`].
    ///
    /// # Panics
    /// Panics when `x0.len() != n` or on a worker fault (use
    /// [`FbmpkPlan::try_power`] for the fallible form).
    pub fn power(&self, x0: &[f64], k: usize) -> Vec<f64> {
        self.try_power(x0, k).unwrap_or_else(|e| panic!("fbmpk: power kernel failed: {e}"))
    }

    /// Fallible [`power`](Self::power): worker panics and watchdog stalls
    /// come back as typed errors. Under
    /// [`FallbackPolicy::ColorBarrier`] a stalled point-to-point
    /// invocation is transparently re-executed on the barrier schedule
    /// (bit-identical results) before any error surfaces.
    pub fn try_power(&self, x0: &[f64], k: usize) -> Result<Vec<f64>> {
        assert_eq!(x0.len(), self.n, "x0 length mismatch");
        if k == 0 {
            return Ok(x0.to_vec());
        }
        let xp = self.permute_in(x0);
        let result = self.with_fallback(|sync| self.execute(&xp, k, &NullSink, sync))?;
        Ok(self.permute_out(result))
    }

    /// [`Self::try_power`] under a per-request watchdog deadline: the
    /// point-to-point stall deadline is re-armed to `deadline_ms` for this
    /// invocation and restored afterwards, error or not. On barrier-sync
    /// plans there are no flag waits to watch, so the deadline is not
    /// enforced mid-run (the request still runs — callers wanting hard
    /// deadlines should build the plan with p2p sync). Invocations on one
    /// plan must be externally serialized while an override is active; a
    /// serving layer holds a per-plan execution lock.
    pub fn try_power_deadline(&self, x0: &[f64], k: usize, deadline_ms: u64) -> Result<Vec<f64>> {
        struct Restore<'a>(&'a FbmpkPlan, Option<u64>);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                if let Some(prev) = self.1 {
                    self.0.set_watchdog_ms(prev);
                }
            }
        }
        let _restore = Restore(self, self.set_watchdog_ms(deadline_ms));
        self.try_power(x0, k)
    }

    /// Computes the Krylov iterates `[A x₀, …, Aᵏ x₀]`.
    ///
    /// # Panics
    /// Panics on a worker fault (use [`FbmpkPlan::try_krylov`]).
    pub fn krylov(&self, x0: &[f64], k: usize) -> Vec<Vec<f64>> {
        self.try_krylov(x0, k).unwrap_or_else(|e| panic!("fbmpk: krylov kernel failed: {e}"))
    }

    /// Fallible [`krylov`](Self::krylov); see [`FbmpkPlan::try_power`]
    /// for the error and fallback semantics.
    pub fn try_krylov(&self, x0: &[f64], k: usize) -> Result<Vec<Vec<f64>>> {
        assert_eq!(x0.len(), self.n, "x0 length mismatch");
        if k == 0 {
            return Ok(Vec::new());
        }
        let xp = self.permute_in(x0);
        // The basis is (re)built inside the attempt: a stalled attempt
        // leaves it partially written.
        let basis = self.with_fallback(|sync| {
            let mut basis = vec![0.0; k * self.n];
            {
                let sink = CollectSink::new(&mut basis, self.n, k);
                self.execute(&xp, k, &sink, sync)?;
            }
            Ok(basis)
        })?;
        Ok(basis.chunks(self.n).map(|c| self.permute_out(c.to_vec())).collect())
    }

    /// Computes `y = Σ_{i=0..=k} coeffs[i] · Aⁱ x₀` with `k =
    /// coeffs.len() - 1`, folding the combination into the sweeps.
    ///
    /// # Panics
    /// Panics when `coeffs` is empty, `x0.len() != n`, or on a worker
    /// fault (use [`FbmpkPlan::try_sspmv`]).
    pub fn sspmv(&self, coeffs: &[f64], x0: &[f64]) -> Vec<f64> {
        self.try_sspmv(coeffs, x0).unwrap_or_else(|e| panic!("fbmpk: sspmv kernel failed: {e}"))
    }

    /// Fallible [`sspmv`](Self::sspmv); see [`FbmpkPlan::try_power`] for
    /// the error and fallback semantics.
    pub fn try_sspmv(&self, coeffs: &[f64], x0: &[f64]) -> Result<Vec<f64>> {
        assert!(!coeffs.is_empty(), "need at least the alpha_0 coefficient");
        assert_eq!(x0.len(), self.n, "x0 length mismatch");
        let k = coeffs.len() - 1;
        let xp = self.permute_in(x0);
        // The accumulator is rebuilt per attempt: AccumSink adds into it
        // as the sweeps run, so a stalled attempt taints it.
        let y = self.with_fallback(|sync| {
            let mut y: Vec<f64> = xp.iter().map(|&v| coeffs[0] * v).collect();
            if k > 0 {
                let sink = AccumSink::new(&mut y, coeffs);
                self.execute(&xp, k, &sink, sync)?;
            }
            Ok(y)
        })?;
        Ok(self.permute_out(y))
    }

    /// Runs the kernel in the permuted domain; returns `x_k` (permuted).
    /// Dispatches on the recorder so the common (no-recorder) case
    /// monomorphizes to the uninstrumented kernel.
    fn execute<S: Sink>(
        &self,
        x0p: &[f64],
        k: usize,
        sink: &S,
        sync: &SyncCtx,
    ) -> Result<Vec<f64>> {
        let t0 = self.telemetry.as_ref().map(|_| Instant::now());
        let result = match &self.recorder {
            Some(rec) => self.execute_probed(x0p, k, sink, sync, &SpanProbe::new(rec)),
            None => self.execute_probed(x0p, k, sink, sync, &NoopProbe),
        };
        // One invocation-granularity stats update (never per color/row):
        // feeds the endpoint's achieved-GB/s and invocation counters.
        if let (Some(tele), Some(t0), Ok(_)) = (&self.telemetry, t0, &result) {
            tele.sweeps().record(self.modeled_matrix_bytes(k), t0.elapsed().as_nanos() as u64);
        }
        result
    }

    fn execute_probed<S: Sink, P: Probe>(
        &self,
        x0p: &[f64],
        k: usize,
        sink: &S,
        sync: &SyncCtx,
        probe: &P,
    ) -> Result<Vec<f64>> {
        // Level-blocked mode replaces the whole streaming pipeline with
        // the BFS-shell wavefront (sinks see every power either way). It
        // runs on per-substep barriers only, so the point-to-point sync
        // context and its fallback machinery don't apply.
        if let Some(lb) = &self.levelblock {
            return lb.run_probed(&self.pool, x0p, k, sink, probe);
        }
        let n = self.n;
        let mut tmp = self.alloc_zeroed(n);
        let mut out = self.alloc_zeroed(n);
        match self.layout {
            VectorLayout::BackToBack => {
                let mut xy = self.alloc_zeroed(2 * n);
                for (i, &v) in x0p.iter().enumerate() {
                    xy[2 * i] = v;
                }
                {
                    let layout = BtbXy::new(&mut xy);
                    run_fbmpk_probed(
                        &self.pool,
                        &self.schedule,
                        &self.split,
                        &layout,
                        &mut tmp,
                        &mut out,
                        k,
                        sink,
                        sync,
                        probe,
                    )?;
                }
                Ok(if k % 2 == 1 { out } else { (0..n).map(|i| xy[2 * i]).collect() })
            }
            VectorLayout::Split => {
                let mut even = x0p.to_vec();
                let mut odd = self.alloc_zeroed(n);
                {
                    let layout = SplitXy::new(&mut even, &mut odd);
                    run_fbmpk_probed(
                        &self.pool,
                        &self.schedule,
                        &self.split,
                        &layout,
                        &mut tmp,
                        &mut out,
                        k,
                        sink,
                        sync,
                        probe,
                    )?;
                }
                Ok(if k % 2 == 1 { out } else { even })
            }
        }
    }

    fn permute_in(&self, x: &[f64]) -> Vec<f64> {
        match &self.perm {
            Some(p) => p.apply_vec_alloc(x),
            None => x.to_vec(),
        }
    }

    fn permute_out(&self, y: Vec<f64>) -> Vec<f64> {
        match &self.perm {
            Some(p) => p.unapply_vec_alloc(&y),
            None => y,
        }
    }

    /// Whether this plan first-touches its buffers from the pool workers.
    pub fn numa_first_touch(&self) -> bool {
        self.numa_first_touch
    }

    /// Allocates a zeroed kernel buffer. With
    /// [`FbmpkOptions::numa_first_touch`] on a parallel plan, pool
    /// workers zero equal contiguous shares, so under Linux's first-touch
    /// policy each page lands on the memory node of a worker that will
    /// stream it (node-major pinning keeps consecutive workers
    /// node-local). The contents are identical either way — all zeros —
    /// so kernel results cannot differ.
    pub(crate) fn alloc_zeroed(&self, len: usize) -> Vec<f64> {
        if !self.numa_first_touch || self.pool.nthreads() <= 1 || len == 0 {
            return vec![0.0; len];
        }
        first_touch_zeroed(&self.pool, len)
    }
}

/// A raw pointer the first-touch closures share across workers; safe
/// because every worker writes a disjoint element range. (The accessor
/// keeps closures capturing the `Sync` wrapper rather than the pointer
/// field itself, which precise capture would otherwise pull out.)
struct FirstTouchPtr<T>(*mut T);
unsafe impl<T> Sync for FirstTouchPtr<T> {}

impl<T> FirstTouchPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Zero-fills a fresh `len`-element buffer with each pool worker writing
/// its own contiguous share (the first-touch placement protocol).
fn first_touch_zeroed(pool: &ThreadPool, len: usize) -> Vec<f64> {
    let mut v: Vec<f64> = Vec::with_capacity(len);
    let nthreads = pool.nthreads();
    let chunk = len.div_ceil(nthreads);
    let ptr = FirstTouchPtr(v.as_mut_ptr());
    pool.run(&|t| {
        let start = (t * chunk).min(len);
        let end = ((t + 1) * chunk).min(len);
        if start < end {
            // SAFETY: per-worker ranges are disjoint, lie within the
            // reserved capacity, and all-zero bits are a valid f64 (0.0).
            unsafe { std::ptr::write_bytes(ptr.get().add(start), 0, end - start) };
        }
    });
    // SAFETY: the workers above zero-initialized all `len` elements.
    unsafe { v.set_len(len) };
    v
}

/// Copies `src` into a fresh buffer whose pages the pool workers
/// first-touch (each copies its own contiguous share).
fn first_touch_copy<T: Copy + Sync>(pool: &ThreadPool, src: &[T]) -> Vec<T> {
    let len = src.len();
    let mut v: Vec<T> = Vec::with_capacity(len);
    let nthreads = pool.nthreads();
    let chunk = len.div_ceil(nthreads);
    let ptr = FirstTouchPtr(v.as_mut_ptr());
    pool.run(&|t| {
        let start = (t * chunk).min(len);
        let end = ((t + 1) * chunk).min(len);
        if start < end {
            // SAFETY: disjoint in-capacity destination ranges; the source
            // is read-only for the whole call.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(start),
                    ptr.get().add(start),
                    end - start,
                )
            };
        }
    });
    // SAFETY: the workers above wrote all `len` elements.
    unsafe { v.set_len(len) };
    v
}

/// Rebuilds the split's per-triangle CSR arrays (and the diagonal) into
/// worker-first-touched storage. Values and structure are copied bitwise,
/// so the rebuilt split is exactly the old one — only page placement
/// differs.
fn first_touch_split(pool: &Arc<ThreadPool>, split: TriangularSplit) -> TriangularSplit {
    let ft_csr = |m: &Csr| -> Csr {
        Csr::from_raw_parts(
            m.nrows(),
            m.ncols(),
            first_touch_copy(pool, m.row_ptr()),
            first_touch_copy(pool, m.col_idx()),
            first_touch_copy(pool, m.values()),
        )
        .expect("first-touch copy preserves CSR invariants")
    };
    TriangularSplit {
        lower: ft_csr(&split.lower),
        diag: first_touch_copy(pool, &split.diag),
        upper: ft_csr(&split.upper),
    }
}

/// Queries where the first-touched kernel arrays actually landed
/// (pages per NUMA node, via `move_pages`): the triangle CSR arrays and
/// diagonal of the live split, plus a representative `xy` iterate buffer
/// allocated through the same first-touch protocol [`FbmpkPlan::power`]
/// uses. Arrays whose placement cannot be queried are omitted.
fn collect_numa_placement(
    pool: &Arc<ThreadPool>,
    split: &TriangularSplit,
    n: usize,
) -> crate::telemetry::NumaPlacement {
    use fbmpk_parallel::numa::slice_pages_per_node;
    let mut out: crate::telemetry::NumaPlacement = Vec::new();
    let mut add = |name: &str, placement: Option<fbmpk_parallel::numa::PagesPerNode>| {
        if let Some(p) = placement {
            if !p.is_empty() {
                out.push((name.to_string(), p));
            }
        }
    };
    add("lower", slice_pages_per_node(split.lower.values()));
    add("upper", slice_pages_per_node(split.upper.values()));
    add("diag", slice_pages_per_node(&split.diag));
    // The iterate pair is allocated per invocation; sample one allocated
    // the same way (pool workers zero disjoint shares) and drop it.
    let xy = first_touch_zeroed(pool, 2 * n);
    add("xy", slice_pages_per_node(&xy));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard::StandardMpk;
    use fbmpk_sparse::vecops::rel_err_inf;

    fn grid() -> Csr {
        fbmpk_gen::poisson::grid2d_5pt(8, 7)
    }

    fn opts_matrix() -> Vec<(&'static str, FbmpkOptions)> {
        vec![
            ("serial-btb", FbmpkOptions::default()),
            ("serial-split", FbmpkOptions { layout: VectorLayout::Split, ..Default::default() }),
            (
                "serial-reordered",
                FbmpkOptions {
                    reorder: Some(AbmcParams { nblocks: 8, ..Default::default() }),
                    ..Default::default()
                },
            ),
            ("parallel-2", {
                let mut o = FbmpkOptions::parallel(2);
                o.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
                o
            }),
            ("parallel-4-split", {
                let mut o = FbmpkOptions::parallel(4);
                o.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
                o.layout = VectorLayout::Split;
                o
            }),
            (
                "serial-levelblocked",
                FbmpkOptions {
                    blocking: BlockingMode::LevelBlocked { tile_powers: Some(3) },
                    ..Default::default()
                },
            ),
            ("parallel-2-levelblocked", {
                let mut o = FbmpkOptions::parallel(2);
                o.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
                o.blocking = BlockingMode::LevelBlocked { tile_powers: None };
                o
            }),
            ("parallel-3-numa-first-touch", {
                let mut o = FbmpkOptions::parallel(3);
                o.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
                o.numa_first_touch = true;
                o
            }),
        ]
    }

    #[test]
    fn power_matches_standard_across_configs() {
        let a = grid();
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let baseline = StandardMpk::new(&a, 1).unwrap();
        for (name, opts) in opts_matrix() {
            let plan = FbmpkPlan::new(&a, opts).unwrap();
            for k in 1..=7 {
                let want = baseline.power(&x0, k);
                let got = plan.power(&x0, k);
                assert!(
                    rel_err_inf(&got, &want) < 1e-11,
                    "{name} k={k}: err {}",
                    rel_err_inf(&got, &want)
                );
            }
        }
    }

    #[test]
    fn krylov_matches_standard() {
        let a = grid();
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let baseline = StandardMpk::new(&a, 1).unwrap();
        let mut opts = FbmpkOptions::parallel(3);
        opts.reorder = Some(AbmcParams { nblocks: 6, ..Default::default() });
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        let k = 5;
        let want = baseline.krylov(&x0, k);
        let got = plan.krylov(&x0, k);
        assert_eq!(got.len(), k);
        for i in 0..k {
            assert!(rel_err_inf(&got[i], &want[i]) < 1e-11, "iterate {i}");
        }
    }

    #[test]
    fn sspmv_matches_standard() {
        let a = grid();
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let coeffs = [0.5, -1.0, 0.0, 2.0, 0.25];
        let baseline = StandardMpk::new(&a, 1).unwrap();
        for (name, opts) in opts_matrix() {
            let plan = FbmpkPlan::new(&a, opts).unwrap();
            let want = baseline.sspmv(&coeffs, &x0);
            let got = plan.sspmv(&coeffs, &x0);
            assert!(rel_err_inf(&got, &want) < 1e-11, "{name}");
        }
    }

    #[test]
    fn k_zero_and_alpha0_only() {
        let a = grid();
        let n = a.nrows();
        let x0 = vec![1.0; n];
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        assert_eq!(plan.power(&x0, 0), x0);
        assert!(plan.krylov(&x0, 0).is_empty());
        let y = plan.sspmv(&[3.0], &x0);
        assert!(y.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn parallel_without_reorder_rejected() {
        let a = grid();
        let opts = FbmpkOptions { nthreads: 2, reorder: None, ..Default::default() };
        assert!(matches!(FbmpkPlan::new(&a, opts), Err(FbmpkError::ParallelNeedsReorder)));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Csr::zero(3, 4);
        assert!(matches!(
            FbmpkPlan::new(&a, FbmpkOptions::default()),
            Err(FbmpkError::NotSquare { .. })
        ));
    }

    #[test]
    fn stats_populated_when_reordered() {
        let a = grid();
        let mut opts = FbmpkOptions::parallel(2);
        opts.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        let s = plan.stats();
        assert!(s.ncolors >= 2);
        assert!(s.nblocks >= 8);
        assert!(s.reorder_seconds >= 0.0);
    }

    #[test]
    fn numa_first_touch_is_bit_identical() {
        // First-touch placement changes page residency, never values:
        // every kernel must return the same bits as the default allocator,
        // for every blocking strategy.
        let a = grid();
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 11 % 17) as f64) - 8.0).collect();
        for strategy in [
            fbmpk_reorder::BlockingStrategy::Contiguous,
            fbmpk_reorder::BlockingStrategy::Aggregated,
            fbmpk_reorder::BlockingStrategy::Multilevel,
        ] {
            let mut base = FbmpkOptions::parallel(3);
            base.reorder = Some(AbmcParams { nblocks: 8, strategy, ..Default::default() });
            let mut ft = base;
            ft.numa_first_touch = true;
            let plain = FbmpkPlan::new(&a, base).unwrap();
            let touched = FbmpkPlan::new(&a, ft).unwrap();
            assert_eq!(plain.split(), touched.split(), "{strategy:?}: split must copy bitwise");
            for k in 1..=5 {
                assert_eq!(plain.power(&x0, k), touched.power(&x0, k), "{strategy:?} k={k}");
            }
            let mut ws = touched.workspace();
            let mut y = vec![0.0; n];
            touched.power_with(&mut ws, &x0, 4, &mut y);
            assert_eq!(y, plain.power(&x0, 4), "{strategy:?}: workspace path");
        }
    }

    #[test]
    fn unsymmetric_matrix_supported() {
        let a = fbmpk_gen::cage::cage_like(fbmpk_gen::cage::CageParams {
            n: 64,
            neighbors: 7,
            seed: 5,
        });
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let baseline = StandardMpk::new(&a, 1).unwrap();
        let mut opts = FbmpkOptions::parallel(2);
        opts.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        for k in [1, 2, 5, 6] {
            let want = baseline.power(&x0, k);
            let got = plan.power(&x0, k);
            assert!(rel_err_inf(&got, &want) < 1e-12, "k={k}");
        }
    }
}
