//! Allocation-free repeated invocation.
//!
//! Solvers call the MPK once per outer iteration (power method, Chebyshev
//! filters, smoothers); allocating `xy`/`tmp`/`out` each call costs more
//! than the kernel on small systems. [`Workspace`] owns the kernel buffers
//! and the `*_with` methods on [`FbmpkPlan`] reuse them, so steady-state
//! invocations perform no heap allocation.

use crate::kernel::run_fbmpk;
use crate::layout::{BtbXy, SplitXy};
use crate::plan::{FbmpkPlan, VectorLayout};
use crate::schedule::SyncCtx;
use crate::sink::{AccumSink, NullSink};

/// Reusable kernel buffers for one plan (sized to its dimension).
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Interleaved or even-half buffer (length `2n`; split layout uses the
    /// two halves as separate arrays).
    xy: Vec<f64>,
    tmp: Vec<f64>,
    out: Vec<f64>,
    /// Permuted-input staging (used when the plan reorders).
    staged: Vec<f64>,
    /// Permuted-domain accumulator for `sspmv_with` on reordered plans.
    acc: Vec<f64>,
    n: usize,
}

impl Workspace {
    /// Allocates buffers for a plan of dimension `n`.
    pub fn new(n: usize) -> Self {
        Workspace {
            xy: vec![0.0; 2 * n],
            tmp: vec![0.0; n],
            out: vec![0.0; n],
            staged: vec![0.0; n],
            acc: vec![0.0; n],
            n,
        }
    }

    /// Dimension the workspace was sized for.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl FbmpkPlan {
    /// Creates a workspace matching this plan. When the plan was built
    /// with [`crate::FbmpkOptions::numa_first_touch`], the buffers are
    /// zeroed by the pool workers in equal contiguous shares, so their
    /// pages are first-touched (and hence placed) on the memory node of
    /// the workers that stream them.
    pub fn workspace(&self) -> Workspace {
        let n = self.n();
        Workspace {
            xy: self.alloc_zeroed(2 * n),
            tmp: self.alloc_zeroed(n),
            out: self.alloc_zeroed(n),
            staged: self.alloc_zeroed(n),
            acc: self.alloc_zeroed(n),
            n,
        }
    }

    /// Like [`FbmpkPlan::power`], but reusing `ws` and writing into `y` —
    /// no allocation in steady state.
    ///
    /// # Panics
    /// Panics on length mismatches, a workspace sized for a different
    /// plan, or a worker fault (use [`FbmpkPlan::try_power_with`]).
    pub fn power_with(&self, ws: &mut Workspace, x0: &[f64], k: usize, y: &mut [f64]) {
        self.try_power_with(ws, x0, k, y)
            .unwrap_or_else(|e| panic!("fbmpk: power kernel failed: {e}"));
    }

    /// Fallible [`power_with`](Self::power_with); worker faults come back
    /// as typed errors, and stalled point-to-point invocations retry on
    /// the barrier schedule under
    /// [`crate::FallbackPolicy::ColorBarrier`]. `y` is only written on
    /// success.
    pub fn try_power_with(
        &self,
        ws: &mut Workspace,
        x0: &[f64],
        k: usize,
        y: &mut [f64],
    ) -> crate::Result<()> {
        let n = self.n();
        assert_eq!(ws.n, n, "workspace sized for a different plan");
        assert_eq!(x0.len(), n);
        assert_eq!(y.len(), n);
        if k == 0 {
            y.copy_from_slice(x0);
            return Ok(());
        }
        // Stage the (possibly permuted) input into the even slots. The
        // kernel never writes `ws.staged`, so a fallback retry restages
        // from it and starts clean.
        match self.permutation() {
            Some(p) => p.apply_vec(x0, &mut ws.staged),
            None => ws.staged.copy_from_slice(x0),
        }
        self.with_fallback(|sync| self.execute_with(ws, k, &NullSink, sync))?;
        self.extract_result(ws, k, y);
        Ok(())
    }

    /// Like [`FbmpkPlan::sspmv`], but reusing `ws` and writing into `y`.
    ///
    /// # Panics
    /// Panics on length mismatches, empty `coeffs`, a foreign workspace,
    /// or a worker fault (use [`FbmpkPlan::try_sspmv_with`]).
    pub fn sspmv_with(&self, ws: &mut Workspace, coeffs: &[f64], x0: &[f64], y: &mut [f64]) {
        self.try_sspmv_with(ws, coeffs, x0, y)
            .unwrap_or_else(|e| panic!("fbmpk: sspmv kernel failed: {e}"));
    }

    /// Fallible [`sspmv_with`](Self::sspmv_with); see
    /// [`FbmpkPlan::try_power_with`] for the error and fallback
    /// semantics. On error `y` may hold a partial accumulation.
    pub fn try_sspmv_with(
        &self,
        ws: &mut Workspace,
        coeffs: &[f64],
        x0: &[f64],
        y: &mut [f64],
    ) -> crate::Result<()> {
        let n = self.n();
        assert_eq!(ws.n, n, "workspace sized for a different plan");
        assert!(!coeffs.is_empty(), "need at least the alpha_0 coefficient");
        assert_eq!(x0.len(), n);
        assert_eq!(y.len(), n);
        let k = coeffs.len() - 1;
        match self.permutation() {
            Some(p) => p.apply_vec(x0, &mut ws.staged),
            None => ws.staged.copy_from_slice(x0),
        }
        // On reordered plans the accumulation happens in the permuted
        // domain; `ws.acc` is moved out for the duration of the kernel
        // (the sink borrows it while `execute_with` borrows `ws`) and
        // moved back afterwards — no allocation in steady state.
        let mut acc = std::mem::take(&mut ws.acc);
        let permuted = self.permutation().is_some();
        let r = self.with_fallback(|sync| {
            // The accumulator is reinitialized inside the attempt: the
            // sink adds into it as the sweeps run, so a stalled attempt
            // taints it and the retry must start from coeffs[0]·x.
            let acc_slice: &mut [f64] = if permuted {
                acc.resize(n, 0.0);
                for (ai, &xi) in acc.iter_mut().zip(&ws.staged) {
                    *ai = coeffs[0] * xi;
                }
                &mut acc
            } else {
                for (yi, &xi) in y.iter_mut().zip(&ws.staged) {
                    *yi = coeffs[0] * xi;
                }
                &mut *y
            };
            if k > 0 {
                let sink = AccumSink::new(acc_slice, coeffs);
                self.execute_with_sink_only(ws, k, &sink, sync)?;
            }
            Ok(())
        });
        if r.is_ok() {
            if let Some(p) = self.permutation() {
                p.unapply_vec(&acc, y);
            }
        }
        ws.acc = acc;
        r
    }

    /// Runs the kernel out of the workspace buffers (input staged in
    /// `ws.staged`).
    fn execute_with<S: crate::sink::Sink>(
        &self,
        ws: &mut Workspace,
        k: usize,
        sink: &S,
        sync: &SyncCtx,
    ) -> crate::Result<()> {
        let n = self.n();
        match self.layout() {
            VectorLayout::BackToBack => {
                for (i, &v) in ws.staged.iter().enumerate() {
                    ws.xy[2 * i] = v;
                }
                let layout = BtbXy::new(&mut ws.xy);
                run_fbmpk(
                    self.pool(),
                    self.schedule(),
                    self.split(),
                    &layout,
                    &mut ws.tmp,
                    &mut ws.out,
                    k,
                    sink,
                    sync,
                )
            }
            VectorLayout::Split => {
                let (even, odd) = ws.xy.split_at_mut(n);
                even[..n].copy_from_slice(&ws.staged);
                let layout = SplitXy::new(&mut even[..n], &mut odd[..n]);
                run_fbmpk(
                    self.pool(),
                    self.schedule(),
                    self.split(),
                    &layout,
                    &mut ws.tmp,
                    &mut ws.out,
                    k,
                    sink,
                    sync,
                )
            }
        }
    }

    /// Variant of [`Self::execute_with`] used when only the sink output
    /// matters (SSpMV): identical execution, named for clarity at call
    /// sites.
    fn execute_with_sink_only<S: crate::sink::Sink>(
        &self,
        ws: &mut Workspace,
        k: usize,
        sink: &S,
        sync: &SyncCtx,
    ) -> crate::Result<()> {
        self.execute_with(ws, k, sink, sync)
    }

    /// Copies `x_k` out of the workspace after [`Self::execute_with`].
    fn extract_result(&self, ws: &Workspace, k: usize, y: &mut [f64]) {
        let n = self.n();
        let pick = |i: usize| -> f64 {
            if k % 2 == 1 {
                ws.out[i]
            } else {
                match self.layout() {
                    VectorLayout::BackToBack => ws.xy[2 * i],
                    VectorLayout::Split => ws.xy[i],
                }
            }
        };
        match self.permutation() {
            Some(p) => {
                let order = p.new_of_old();
                for (i, yi) in y.iter_mut().enumerate() {
                    *yi = pick(order[i] as usize);
                }
            }
            None => {
                for (i, yi) in y.iter_mut().enumerate().take(n) {
                    *yi = pick(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FbmpkOptions;
    use fbmpk_reorder::AbmcParams;
    use fbmpk_sparse::vecops::rel_err_inf;

    fn grid() -> fbmpk_sparse::Csr {
        fbmpk_gen::poisson::grid2d_5pt(9, 8)
    }

    fn all_plans(a: &fbmpk_sparse::Csr) -> Vec<(&'static str, FbmpkPlan)> {
        let abmc = AbmcParams { nblocks: 12, ..Default::default() };
        vec![
            ("serial-btb", FbmpkPlan::new(a, FbmpkOptions::default()).unwrap()),
            (
                "serial-split",
                FbmpkPlan::new(
                    a,
                    FbmpkOptions { layout: VectorLayout::Split, ..Default::default() },
                )
                .unwrap(),
            ),
            (
                "serial-reordered",
                FbmpkPlan::new(a, FbmpkOptions { reorder: Some(abmc), ..Default::default() })
                    .unwrap(),
            ),
            ("parallel", {
                let mut o = FbmpkOptions::parallel(3);
                o.reorder = Some(abmc);
                FbmpkPlan::new(a, o).unwrap()
            }),
            ("parallel-split", {
                let mut o = FbmpkOptions::parallel(2);
                o.reorder = Some(abmc);
                o.layout = VectorLayout::Split;
                FbmpkPlan::new(a, o).unwrap()
            }),
        ]
    }

    #[test]
    fn power_with_matches_power() {
        let a = grid();
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 13 % 31) as f64) / 15.0 - 1.0).collect();
        for (name, plan) in all_plans(&a) {
            let mut ws = plan.workspace();
            let mut y = vec![0.0; n];
            for k in 0..=7 {
                plan.power_with(&mut ws, &x0, k, &mut y);
                let want = plan.power(&x0, k);
                assert_eq!(y, want, "{name} k={k}");
            }
        }
    }

    #[test]
    fn sspmv_with_matches_sspmv() {
        let a = grid();
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        let coeffs = [0.5, -1.0, 0.25, 0.0, 1.5];
        for (name, plan) in all_plans(&a) {
            let mut ws = plan.workspace();
            let mut y = vec![0.0; n];
            plan.sspmv_with(&mut ws, &coeffs, &x0, &mut y);
            let want = plan.sspmv(&coeffs, &x0);
            assert!(rel_err_inf(&y, &want) < 1e-14, "{name}");
        }
    }

    #[test]
    fn workspace_is_reusable_across_k() {
        let a = grid();
        let n = a.nrows();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let mut ws = plan.workspace();
        let x0 = vec![1.0; n];
        let mut y = vec![0.0; n];
        // Alternate parities and sizes; stale buffer content must not leak.
        for &k in &[5usize, 2, 7, 1, 4] {
            plan.power_with(&mut ws, &x0, k, &mut y);
            assert_eq!(y, plan.power(&x0, k), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "different plan")]
    fn foreign_workspace_rejected() {
        let a = grid();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let mut ws = Workspace::new(3);
        let mut y = vec![0.0; a.nrows()];
        plan.power_with(&mut ws, &vec![1.0; a.nrows()], 2, &mut y);
    }
}
