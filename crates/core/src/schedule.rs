//! Execution schedules for the colored sweeps.
//!
//! A [`Schedule`] fixes, ahead of time (paper: "the number of blocks for
//! each thread task are allocated in advance"), which contiguous row range
//! each thread owns within each color, plus a flat row partition for the
//! head/tail stages. Row ranges never split an ABMC block — intra-block
//! dependencies require a block to stay on one thread.

use fbmpk_parallel::partition::merge_balance_by_weight;
use fbmpk_parallel::BlockFlags;
use fbmpk_reorder::{Abmc, BlockDeps};
use fbmpk_sparse::TriangularSplit;
use std::ops::Range;

/// How the colored sweeps synchronize between dependent blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// A pool-wide barrier after every color (paper §III-D/E): simple,
    /// and near-free when colors are few and wide.
    #[default]
    ColorBarrier,
    /// Barrier-free sweeps: each block spin-waits on the per-block epoch
    /// flags of exactly the predecessor blocks its rows reference
    /// ([`fbmpk_reorder::BlockDeps`]), so a thread flows straight from
    /// color `c` into `c+1`. Barriers remain only around the head/tail
    /// stages, whose flat partition crosses block boundaries.
    PointToPoint,
}

/// Synchronization context handed to the sweep kernels: the mode plus,
/// for point-to-point runs, borrowed dependency lists and flag table.
#[derive(Clone, Copy)]
pub enum SyncCtx<'a> {
    /// Barrier after every color.
    Barrier,
    /// Per-block flag waits; no intra-sweep barriers.
    PointToPoint {
        /// Per-block wait lists (forward: earlier colors; backward: later).
        deps: &'a BlockDeps,
        /// One epoch flag per block, reset at the start of each kernel
        /// invocation.
        flags: &'a BlockFlags,
    },
}

/// Per-color, per-thread row assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `colors[c][t]` = contiguous row range of color `c` owned by thread
    /// `t`. Colors are contiguous row spans in the ABMC-permuted numbering.
    pub colors: Vec<Vec<Range<usize>>>,
    /// `blocks[c][t]` = contiguous **global block-id** range backing
    /// `colors[c][t]` (same partition, block granularity — what the
    /// point-to-point sweeps iterate and flag).
    pub blocks: Vec<Vec<Range<usize>>>,
    /// Row range of block `b` is
    /// `block_row_start[b] .. block_row_start[b + 1]`.
    pub block_row_start: Vec<usize>,
    /// `flat[t]` = row range of thread `t` for the head/tail full-matrix
    /// stages (balanced by total row nnz).
    pub flat: Vec<Range<usize>>,
    /// Number of worker threads.
    pub nthreads: usize,
    /// Matrix dimension.
    pub n: usize,
}

impl Schedule {
    /// The trivial single-thread schedule: one color covering all rows in
    /// natural order — the serial FBMPK of paper §III-B.
    pub fn serial(n: usize) -> Self {
        let full: Vec<Range<usize>> = std::iter::once(0..n).collect();
        Schedule {
            colors: vec![full.clone()],
            blocks: vec![vec![0..1]],
            block_row_start: vec![0, n],
            flat: full,
            nthreads: 1,
            n,
        }
    }

    /// Builds the colored schedule from an ABMC ordering and the (permuted)
    /// triangular split. Within each color, that color's blocks are
    /// distributed over threads by merge-path diagonals over per-block
    /// `nnz(L) + nnz(U)` weights, which bounds each thread's overshoot to
    /// one block even on skewed inputs. Thread ranges never split a block.
    ///
    /// All partition work happens here, once: per-row weights are computed
    /// in a single pass and shared by the per-color block weights and the
    /// flat head/tail partition, and both the row- and block-granular
    /// thread ranges are cached on the schedule (see
    /// [`Schedule::color_threads`] / [`Schedule::color_thread_blocks`]) so
    /// sweep call sites never re-partition.
    pub fn colored(abmc: &Abmc, split: &TriangularSplit, nthreads: usize) -> Self {
        assert!(nthreads > 0);
        let n = split.n();
        // One pass over the matrix rows; reused by every partition below.
        let row_weights: Vec<usize> =
            (0..n).map(|r| split.lower.row_nnz(r) + split.upper.row_nnz(r) + 1).collect();
        let mut colors = Vec::with_capacity(abmc.ncolors());
        let mut block_ranges = Vec::with_capacity(abmc.ncolors());
        for c in 0..abmc.ncolors() {
            let blocks: Vec<usize> = abmc.color_blocks(c).collect();
            let cb_start = abmc.color_blocks(c).start;
            let weights: Vec<usize> =
                blocks.iter().map(|&b| abmc.block_rows(b).map(|r| row_weights[r]).sum()).collect();
            let parts = merge_balance_by_weight(&weights, nthreads);
            let mut per_thread = Vec::with_capacity(nthreads);
            let mut per_thread_blocks = Vec::with_capacity(nthreads);
            for brange in parts {
                // Local (within-color) block indices → global block ids.
                per_thread_blocks.push(cb_start + brange.start..cb_start + brange.end);
                per_thread.push(if brange.is_empty() {
                    // Empty block range: empty row range at the color
                    // edge. A color can own fewer blocks than there are
                    // threads — or none at all — so every index here is
                    // guarded rather than unwrapped.
                    let edge = if blocks.is_empty() {
                        0
                    } else if brange.start < blocks.len() {
                        abmc.block_rows(blocks[brange.start]).start
                    } else {
                        abmc.block_rows(*blocks.last().expect("blocks nonempty")).end
                    };
                    edge..edge
                } else {
                    let first = blocks[brange.start];
                    let last = blocks[brange.end - 1];
                    abmc.block_rows(first).start..abmc.block_rows(last).end
                });
            }
            colors.push(per_thread);
            block_ranges.push(per_thread_blocks);
        }
        let mut block_row_start: Vec<usize> =
            (0..abmc.nblocks()).map(|b| abmc.block_rows(b).start).collect();
        block_row_start.push(n);
        // Head/tail partition: whole rows balanced by nnz, block boundaries
        // irrelevant (those stages have no intra-sweep dependencies).
        let flat = merge_balance_by_weight(&row_weights, nthreads);
        Schedule { colors, blocks: block_ranges, block_row_start, flat, nthreads, n }
    }

    /// Number of colors.
    pub fn ncolors(&self) -> usize {
        self.colors.len()
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.block_row_start.len() - 1
    }

    /// The cached per-thread row ranges of color `c`.
    #[inline]
    pub fn color_threads(&self, c: usize) -> &[Range<usize>] {
        &self.colors[c]
    }

    /// The cached per-thread global-block-id ranges of color `c`.
    #[inline]
    pub fn color_thread_blocks(&self, c: usize) -> &[Range<usize>] {
        &self.blocks[c]
    }

    /// Row range of block `b` (global id, schedule order).
    #[inline]
    pub fn block_rows(&self, b: usize) -> Range<usize> {
        self.block_row_start[b]..self.block_row_start[b + 1]
    }

    /// Validates internal consistency: per color, thread ranges are
    /// contiguous and disjoint; the union over colors covers `0..n`; the
    /// flat partition covers `0..n`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        // Exact-cover check: mark every row; a duplicate mark catches
        // overlaps across colors that a length sum would miss.
        let mut seen = vec![false; self.n];
        for (c, per_thread) in self.colors.iter().enumerate() {
            if per_thread.len() != self.nthreads {
                return Err(format!("color {c} has {} thread slots", per_thread.len()));
            }
            let mut prev_end: Option<usize> = None;
            for (t, r) in per_thread.iter().enumerate() {
                if r.start > r.end {
                    return Err(format!("color {c} thread {t} invalid range {r:?}"));
                }
                if let Some(pe) = prev_end {
                    if !r.is_empty() && r.start < pe {
                        return Err(format!("color {c} thread {t} overlaps previous"));
                    }
                }
                if !r.is_empty() {
                    prev_end = Some(r.end);
                }
                for row in r.clone() {
                    if row >= self.n {
                        return Err(format!("color {c} thread {t} row {row} out of range"));
                    }
                    if seen[row] {
                        return Err(format!("row {row} assigned to more than one color/thread"));
                    }
                    seen[row] = true;
                }
            }
        }
        if let Some(row) = seen.iter().position(|&s| !s) {
            return Err(format!("row {row} not covered by any color"));
        }
        let flat_cover: usize = self.flat.iter().map(|r| r.len()).sum();
        if flat_cover != self.n {
            return Err(format!("flat covers {flat_cover} of {} rows", self.n));
        }
        // Block table: offsets monotone over 0..n, block-granular thread
        // ranges mirror the row-granular ones exactly, every block
        // assigned once.
        if self.block_row_start.first() != Some(&0)
            || self.block_row_start.last() != Some(&self.n)
            || self.block_row_start.windows(2).any(|w| w[0] > w[1])
        {
            return Err("block_row_start is not a monotone cover of 0..n".into());
        }
        if self.blocks.len() != self.colors.len() {
            return Err("blocks/colors color-count mismatch".into());
        }
        let mut block_seen = vec![false; self.nblocks()];
        for (c, (per_thread_blocks, per_thread)) in self.blocks.iter().zip(&self.colors).enumerate()
        {
            if per_thread_blocks.len() != self.nthreads {
                return Err(format!("color {c} has {} block slots", per_thread_blocks.len()));
            }
            for (t, (br, rr)) in per_thread_blocks.iter().zip(per_thread).enumerate() {
                for b in br.clone() {
                    if b >= self.nblocks() {
                        return Err(format!("color {c} thread {t} block {b} out of range"));
                    }
                    if block_seen[b] {
                        return Err(format!("block {b} assigned twice"));
                    }
                    block_seen[b] = true;
                }
                if !br.is_empty() {
                    let rows = self.block_row_start[br.start]..self.block_row_start[br.end];
                    if rows != *rr {
                        return Err(format!(
                            "color {c} thread {t}: block range {br:?} covers rows {rows:?}, \
                             schedule says {rr:?}"
                        ));
                    }
                } else if !rr.is_empty() {
                    return Err(format!("color {c} thread {t}: empty blocks but rows {rr:?}"));
                }
            }
        }
        if let Some(b) = block_seen.iter().position(|&s| !s) {
            return Err(format!("block {b} not assigned to any color/thread"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_reorder::{AbmcParams, BlockingStrategy};
    use fbmpk_sparse::Csr;

    fn tridiag(n: usize) -> Csr {
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn serial_schedule_trivial() {
        let s = Schedule::serial(10);
        s.validate().unwrap();
        assert_eq!(s.ncolors(), 1);
        assert_eq!(s.colors[0][0], 0..10);
        assert_eq!(s.nblocks(), 1);
        assert_eq!(s.block_rows(0), 0..10);
        assert_eq!(s.color_thread_blocks(0), std::slice::from_ref(&(0..1)));
    }

    #[test]
    fn cached_block_ranges_mirror_row_ranges() {
        let a = tridiag(96);
        let abmc = Abmc::new(&a, AbmcParams { nblocks: 12, ..Default::default() });
        let b = abmc.apply(&a);
        let split = TriangularSplit::split(&b).unwrap();
        for t in [1, 3, 4, 16] {
            let s = Schedule::colored(&abmc, &split, t);
            s.validate().unwrap();
            assert_eq!(s.nblocks(), abmc.nblocks());
            for c in 0..s.ncolors() {
                // Accessors expose the cached partitions.
                assert_eq!(s.color_threads(c), &s.colors[c][..]);
                for (tid, br) in s.color_thread_blocks(c).iter().enumerate() {
                    if br.is_empty() {
                        assert!(s.colors[c][tid].is_empty());
                    } else {
                        assert_eq!(
                            s.block_rows(br.start).start..s.block_rows(br.end - 1).end,
                            s.colors[c][tid]
                        );
                    }
                }
            }
            // Every block id shows up exactly once across colors/threads.
            let mut ids: Vec<usize> = s.blocks.iter().flatten().flat_map(|r| r.clone()).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..abmc.nblocks()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn colored_schedule_covers_rows() {
        let a = tridiag(128);
        let abmc = Abmc::new(
            &a,
            AbmcParams {
                nblocks: 16,
                strategy: BlockingStrategy::Contiguous,
                ..Default::default()
            },
        );
        let b = abmc.apply(&a);
        let split = TriangularSplit::split(&b).unwrap();
        for t in [1, 2, 4, 9] {
            let s = Schedule::colored(&abmc, &split, t);
            s.validate().unwrap();
            assert_eq!(s.nthreads, t);
            assert_eq!(s.ncolors(), abmc.ncolors());
        }
    }

    #[test]
    fn thread_ranges_respect_block_boundaries() {
        let a = tridiag(100);
        let abmc = Abmc::new(
            &a,
            AbmcParams {
                nblocks: 10,
                strategy: BlockingStrategy::Contiguous,
                ..Default::default()
            },
        );
        let b = abmc.apply(&a);
        let split = TriangularSplit::split(&b).unwrap();
        let s = Schedule::colored(&abmc, &split, 3);
        // Every thread range boundary must coincide with a block boundary.
        let block_starts: std::collections::HashSet<usize> = (0..abmc.nblocks())
            .flat_map(|b| [abmc.block_rows(b).start, abmc.block_rows(b).end])
            .collect();
        for per_thread in &s.colors {
            for r in per_thread {
                if !r.is_empty() {
                    assert!(block_starts.contains(&r.start), "{r:?} splits a block");
                    assert!(block_starts.contains(&r.end), "{r:?} splits a block");
                }
            }
        }
    }

    #[test]
    fn more_threads_than_blocks() {
        let a = tridiag(20);
        let abmc = Abmc::new(
            &a,
            AbmcParams { nblocks: 2, strategy: BlockingStrategy::Contiguous, ..Default::default() },
        );
        let b = abmc.apply(&a);
        let split = TriangularSplit::split(&b).unwrap();
        let s = Schedule::colored(&abmc, &split, 8);
        s.validate().unwrap();
    }

    /// Regression: a color with fewer blocks than threads produced an
    /// out-of-bounds `blocks.last().unwrap()` when a trailing empty block
    /// range was materialized. Exercise nthreads far above nblocks across
    /// both blocking strategies and several matrix shapes so every color
    /// hands most threads an empty range.
    #[test]
    fn many_threads_few_blocks_per_color() {
        for n in [4, 7, 20, 33] {
            let a = tridiag(n);
            for strategy in [BlockingStrategy::Contiguous, BlockingStrategy::Aggregated] {
                for nblocks in [1, 2, 3] {
                    let abmc =
                        Abmc::new(&a, AbmcParams { nblocks, strategy, ..Default::default() });
                    let b = abmc.apply(&a);
                    let split = TriangularSplit::split(&b).unwrap();
                    for nthreads in [abmc.nblocks() + 1, 16, 64] {
                        let s = Schedule::colored(&abmc, &split, nthreads);
                        s.validate().unwrap_or_else(|e| {
                            panic!("n={n} nblocks={nblocks} nthreads={nthreads}: {e}")
                        });
                    }
                }
            }
        }
    }
}
