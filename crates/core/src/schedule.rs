//! Execution schedules for the colored sweeps.
//!
//! A [`Schedule`] fixes, ahead of time (paper: "the number of blocks for
//! each thread task are allocated in advance"), which contiguous row range
//! each thread owns within each color, plus a flat row partition for the
//! head/tail stages. Row ranges never split an ABMC block — intra-block
//! dependencies require a block to stay on one thread.

use fbmpk_parallel::partition::merge_balance_by_weight;
use fbmpk_reorder::Abmc;
use fbmpk_sparse::TriangularSplit;
use std::ops::Range;

/// Per-color, per-thread row assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `colors[c][t]` = contiguous row range of color `c` owned by thread
    /// `t`. Colors are contiguous row spans in the ABMC-permuted numbering.
    pub colors: Vec<Vec<Range<usize>>>,
    /// `flat[t]` = row range of thread `t` for the head/tail full-matrix
    /// stages (balanced by total row nnz).
    pub flat: Vec<Range<usize>>,
    /// Number of worker threads.
    pub nthreads: usize,
    /// Matrix dimension.
    pub n: usize,
}

impl Schedule {
    /// The trivial single-thread schedule: one color covering all rows in
    /// natural order — the serial FBMPK of paper §III-B.
    pub fn serial(n: usize) -> Self {
        let full: Vec<Range<usize>> = std::iter::once(0..n).collect();
        Schedule { colors: vec![full.clone()], flat: full, nthreads: 1, n }
    }

    /// Builds the colored schedule from an ABMC ordering and the (permuted)
    /// triangular split. Within each color, that color's blocks are
    /// distributed over threads by merge-path diagonals over per-block
    /// `nnz(L) + nnz(U)` weights, which bounds each thread's overshoot to
    /// one block even on skewed inputs. Thread ranges never split a block.
    pub fn colored(abmc: &Abmc, split: &TriangularSplit, nthreads: usize) -> Self {
        assert!(nthreads > 0);
        let n = split.n();
        let row_weight = |r: usize| split.lower.row_nnz(r) + split.upper.row_nnz(r) + 1;
        let mut colors = Vec::with_capacity(abmc.ncolors());
        for c in 0..abmc.ncolors() {
            let blocks: Vec<usize> = abmc.color_blocks(c).collect();
            let weights: Vec<usize> =
                blocks.iter().map(|&b| abmc.block_rows(b).map(row_weight).sum()).collect();
            let parts = merge_balance_by_weight(&weights, nthreads);
            let per_thread: Vec<Range<usize>> = parts
                .into_iter()
                .map(|brange| {
                    if brange.is_empty() {
                        // Empty block range: empty row range at the color
                        // edge. A color can own fewer blocks than there are
                        // threads — or none at all — so every index here is
                        // guarded rather than unwrapped.
                        let edge = if blocks.is_empty() {
                            0
                        } else if brange.start < blocks.len() {
                            abmc.block_rows(blocks[brange.start]).start
                        } else {
                            abmc.block_rows(*blocks.last().expect("blocks nonempty")).end
                        };
                        edge..edge
                    } else {
                        let first = blocks[brange.start];
                        let last = blocks[brange.end - 1];
                        abmc.block_rows(first).start..abmc.block_rows(last).end
                    }
                })
                .collect();
            colors.push(per_thread);
        }
        // Head/tail partition: whole rows balanced by nnz, block boundaries
        // irrelevant (those stages have no intra-sweep dependencies).
        let weights: Vec<usize> = (0..n).map(row_weight).collect();
        let flat = merge_balance_by_weight(&weights, nthreads);
        Schedule { colors, flat, nthreads, n }
    }

    /// Number of colors.
    pub fn ncolors(&self) -> usize {
        self.colors.len()
    }

    /// Validates internal consistency: per color, thread ranges are
    /// contiguous and disjoint; the union over colors covers `0..n`; the
    /// flat partition covers `0..n`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        // Exact-cover check: mark every row; a duplicate mark catches
        // overlaps across colors that a length sum would miss.
        let mut seen = vec![false; self.n];
        for (c, per_thread) in self.colors.iter().enumerate() {
            if per_thread.len() != self.nthreads {
                return Err(format!("color {c} has {} thread slots", per_thread.len()));
            }
            let mut prev_end: Option<usize> = None;
            for (t, r) in per_thread.iter().enumerate() {
                if r.start > r.end {
                    return Err(format!("color {c} thread {t} invalid range {r:?}"));
                }
                if let Some(pe) = prev_end {
                    if !r.is_empty() && r.start < pe {
                        return Err(format!("color {c} thread {t} overlaps previous"));
                    }
                }
                if !r.is_empty() {
                    prev_end = Some(r.end);
                }
                for row in r.clone() {
                    if row >= self.n {
                        return Err(format!("color {c} thread {t} row {row} out of range"));
                    }
                    if seen[row] {
                        return Err(format!("row {row} assigned to more than one color/thread"));
                    }
                    seen[row] = true;
                }
            }
        }
        if let Some(row) = seen.iter().position(|&s| !s) {
            return Err(format!("row {row} not covered by any color"));
        }
        let flat_cover: usize = self.flat.iter().map(|r| r.len()).sum();
        if flat_cover != self.n {
            return Err(format!("flat covers {flat_cover} of {} rows", self.n));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_reorder::{AbmcParams, BlockingStrategy};
    use fbmpk_sparse::Csr;

    fn tridiag(n: usize) -> Csr {
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn serial_schedule_trivial() {
        let s = Schedule::serial(10);
        s.validate().unwrap();
        assert_eq!(s.ncolors(), 1);
        assert_eq!(s.colors[0][0], 0..10);
    }

    #[test]
    fn colored_schedule_covers_rows() {
        let a = tridiag(128);
        let abmc = Abmc::new(
            &a,
            AbmcParams {
                nblocks: 16,
                strategy: BlockingStrategy::Contiguous,
                ..Default::default()
            },
        );
        let b = abmc.apply(&a);
        let split = TriangularSplit::split(&b).unwrap();
        for t in [1, 2, 4, 9] {
            let s = Schedule::colored(&abmc, &split, t);
            s.validate().unwrap();
            assert_eq!(s.nthreads, t);
            assert_eq!(s.ncolors(), abmc.ncolors());
        }
    }

    #[test]
    fn thread_ranges_respect_block_boundaries() {
        let a = tridiag(100);
        let abmc = Abmc::new(
            &a,
            AbmcParams {
                nblocks: 10,
                strategy: BlockingStrategy::Contiguous,
                ..Default::default()
            },
        );
        let b = abmc.apply(&a);
        let split = TriangularSplit::split(&b).unwrap();
        let s = Schedule::colored(&abmc, &split, 3);
        // Every thread range boundary must coincide with a block boundary.
        let block_starts: std::collections::HashSet<usize> = (0..abmc.nblocks())
            .flat_map(|b| [abmc.block_rows(b).start, abmc.block_rows(b).end])
            .collect();
        for per_thread in &s.colors {
            for r in per_thread {
                if !r.is_empty() {
                    assert!(block_starts.contains(&r.start), "{r:?} splits a block");
                    assert!(block_starts.contains(&r.end), "{r:?} splits a block");
                }
            }
        }
    }

    #[test]
    fn more_threads_than_blocks() {
        let a = tridiag(20);
        let abmc = Abmc::new(
            &a,
            AbmcParams { nblocks: 2, strategy: BlockingStrategy::Contiguous, ..Default::default() },
        );
        let b = abmc.apply(&a);
        let split = TriangularSplit::split(&b).unwrap();
        let s = Schedule::colored(&abmc, &split, 8);
        s.validate().unwrap();
    }

    /// Regression: a color with fewer blocks than threads produced an
    /// out-of-bounds `blocks.last().unwrap()` when a trailing empty block
    /// range was materialized. Exercise nthreads far above nblocks across
    /// both blocking strategies and several matrix shapes so every color
    /// hands most threads an empty range.
    #[test]
    fn many_threads_few_blocks_per_color() {
        for n in [4, 7, 20, 33] {
            let a = tridiag(n);
            for strategy in [BlockingStrategy::Contiguous, BlockingStrategy::Aggregated] {
                for nblocks in [1, 2, 3] {
                    let abmc =
                        Abmc::new(&a, AbmcParams { nblocks, strategy, ..Default::default() });
                    let b = abmc.apply(&a);
                    let split = TriangularSplit::split(&b).unwrap();
                    for nthreads in [abmc.nblocks() + 1, 16, 64] {
                        let s = Schedule::colored(&abmc, &split, nthreads);
                        s.validate().unwrap_or_else(|e| {
                            panic!("n={n} nblocks={nblocks} nthreads={nthreads}: {e}")
                        });
                    }
                }
            }
        }
    }
}
