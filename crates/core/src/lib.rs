//! # fbmpk
//!
//! Forward–backward matrix-power kernels (FBMPK) — a Rust reproduction of
//! Zhang et al., *Memory-aware Optimization for Sequences of Sparse
//! Matrix-Vector Multiplications*, IPDPS 2023.
//!
//! An MPK computes `Ax, A²x, …, Aᵏx`; generic SSpMV computes
//! `y = Σᵢ αᵢ Aⁱ x`. The standard implementation ([`standard`]) streams the
//! matrix from memory `k` times. FBMPK splits `A = L + D + U` and merges
//! adjacent SpMV invocations into one forward sweep over `L` plus one
//! backward sweep over `U`, reading the matrix only ⌈(k+1)/2⌉ times
//! (paper §III-B), with the two live iterates interleaved back-to-back in
//! memory (§III-C) and parallelized by ABMC multi-coloring (§III-D/E).
//!
//! # Quick start
//!
//! ```
//! use fbmpk::{FbmpkPlan, FbmpkOptions};
//!
//! let a = fbmpk_sparse::Csr::from_dense(&[
//!     &[4.0, 1.0, 0.0],
//!     &[1.0, 4.0, 1.0],
//!     &[0.0, 1.0, 4.0],
//! ]);
//! let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
//! let x0 = vec![1.0, 0.0, 0.0];
//! let x3 = plan.power(&x0, 3);               // A^3 x0
//! let y = plan.sspmv(&[1.0, 0.0, 1.0], &x0); // x0 + A^2 x0
//! assert_eq!(x3.len(), 3);
//! assert_eq!(y.len(), 3);
//! ```

pub mod engine;
pub mod fingerprint;
pub mod kernel;
pub mod layout;
pub mod levelblock;
pub mod model;
pub mod plan;
pub mod schedule;
pub mod sink;
pub mod standard;
pub mod symgs;
pub mod telemetry;
pub mod tune;
pub mod workspace;

pub use engine::MpkEngine;
pub use fingerprint::Fnv64;
pub use levelblock::{probe_llc_bytes, BlockingMode, LevelBlockPlan};
pub use plan::{
    FallbackPolicy, FbmpkOptions, FbmpkPlan, ObsOptions, VectorLayout, DEFAULT_WATCHDOG_MS,
};
pub use schedule::{Schedule, SyncCtx, SyncMode};
pub use standard::StandardMpk;
pub use tune::{select_blocking_strategy, KernelVariant, MatrixFeatures, TuneOptions, TunedPlan};
pub use workspace::Workspace;

/// Errors from plan construction and kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FbmpkError {
    /// The input matrix was not square.
    NotSquare { nrows: usize, ncols: usize },
    /// A vector length did not match the matrix dimension.
    BadLength { expected: usize, got: usize },
    /// Parallel execution was requested without a reordering; the FB sweeps
    /// carry intra-sweep dependencies that need a coloring to parallelize.
    ParallelNeedsReorder,
    /// An underlying sparse-matrix operation failed.
    Sparse(String),
    /// A pool worker panicked during a kernel invocation. Peers unwound
    /// via the poison latch; the pool (and plan) remain usable.
    WorkerPanicked {
        /// Worker id whose closure panicked.
        thread: usize,
        /// Color of the last compute unit the worker started, if known.
        color: Option<u32>,
        /// Block of that unit (point-to-point schedules only).
        block: Option<u32>,
        /// Stringified panic payload.
        payload: String,
    },
    /// A point-to-point wait exceeded the stall watchdog deadline
    /// (`FbmpkOptions::watchdog_ms` / `FBMPK_WATCHDOG_MS`).
    Stalled {
        /// Worker id that timed out.
        thread: usize,
        /// Block whose epoch flag never arrived.
        block: usize,
        /// Epoch the waiter needed.
        epoch: u64,
        /// Milliseconds spent waiting past the spin budget.
        waited_ms: u64,
        /// Per-thread diagnostic dump (who waits on what, last started
        /// compute unit per thread).
        dump: String,
    },
}

impl std::fmt::Display for FbmpkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FbmpkError::NotSquare { nrows, ncols } => {
                write!(f, "matrix must be square, got {nrows}x{ncols}")
            }
            FbmpkError::BadLength { expected, got } => {
                write!(f, "vector length {got}, expected {expected}")
            }
            FbmpkError::ParallelNeedsReorder => {
                write!(f, "parallel FBMPK requires ABMC reordering (set options.reorder)")
            }
            FbmpkError::Sparse(m) => write!(f, "sparse error: {m}"),
            FbmpkError::WorkerPanicked { thread, color, block, payload } => {
                write!(f, "worker {thread} panicked")?;
                if let Some(c) = color {
                    write!(f, " at color {c}")?;
                }
                if let Some(b) = block {
                    write!(f, " block {b}")?;
                }
                write!(f, ": {payload}")
            }
            FbmpkError::Stalled { thread, block, epoch, waited_ms, dump } => {
                write!(
                    f,
                    "worker {thread} stalled {waited_ms} ms waiting for block {block} \
                     epoch {epoch}\n{dump}"
                )
            }
        }
    }
}

impl std::error::Error for FbmpkError {}

impl From<fbmpk_sparse::SparseError> for FbmpkError {
    fn from(e: fbmpk_sparse::SparseError) -> Self {
        FbmpkError::Sparse(e.to_string())
    }
}

impl From<fbmpk_parallel::WorkerFault> for FbmpkError {
    fn from(f: fbmpk_parallel::WorkerFault) -> Self {
        match f.cause {
            fbmpk_parallel::FaultCause::Panic { payload } => FbmpkError::WorkerPanicked {
                thread: f.thread,
                color: f.color,
                block: f.block,
                payload,
            },
            fbmpk_parallel::FaultCause::Stall { block, epoch, waited_ms, dump } => {
                FbmpkError::Stalled { thread: f.thread, block, epoch, waited_ms, dump }
            }
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FbmpkError>;
