//! The standard MPK baseline (paper Algorithm 1).
//!
//! `x_i = A·x_{i-1}` with a conventional CSR SpMV per invocation. This is
//! the comparison point for every speedup in the paper (on ARM the baseline
//! uses the same tuned SpMV kernel as FBMPK; on x86 the paper uses MKL —
//! our substitution note lives in DESIGN.md). Parallelization is the
//! classic row partition: iterates are produced by barrier-separated
//! rounds, so each SpMV reads a fully-formed input vector.

use crate::sink::{AccumSink, CollectSink, NullSink, Sink};
use crate::{FbmpkError, Result};
use fbmpk_parallel::partition::merge_path_partition;
use fbmpk_parallel::{SharedSlice, ThreadPool};
use fbmpk_sparse::Csr;
use std::ops::Range;
use std::sync::Arc;

/// A prepared standard-MPK executor: matrix + thread pool + row partition.
pub struct StandardMpk {
    a: Csr,
    pool: Arc<ThreadPool>,
    ranges: Vec<Range<usize>>,
}

impl StandardMpk {
    /// Prepares a standard MPK on `nthreads` workers.
    ///
    /// # Errors
    /// Returns [`FbmpkError::NotSquare`] for rectangular matrices.
    pub fn new(a: &Csr, nthreads: usize) -> Result<Self> {
        Self::with_pool(a, Arc::new(ThreadPool::new(nthreads)))
    }

    /// Prepares a standard MPK reusing an existing pool (so baseline and
    /// FBMPK can share workers in benchmarks).
    ///
    /// # Errors
    /// Returns [`FbmpkError::NotSquare`] for rectangular matrices.
    pub fn with_pool(a: &Csr, pool: Arc<ThreadPool>) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(FbmpkError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        // Same validation gate as `FbmpkPlan`: debug builds always,
        // release builds when FBMPK_VALIDATE is set.
        if crate::plan::validate_inputs_enabled() {
            a.validate()?;
        }
        // The CSR row_ptr array is already the nnz prefix, and merge-path
        // coordinates (row index + nnz prefix) reproduce the `nnz + 1`
        // per-row weight convention exactly.
        let ranges = merge_path_partition(a.row_ptr(), pool.nthreads());
        Ok(StandardMpk { a: a.clone(), pool, ranges })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.a.nrows()
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Csr {
        &self.a
    }

    /// Computes `Aᵏ x₀`.
    ///
    /// # Panics
    /// Panics when `x0.len() != n`.
    pub fn power(&self, x0: &[f64], k: usize) -> Vec<f64> {
        if k == 0 {
            return x0.to_vec();
        }
        let mut bufs = (x0.to_vec(), vec![0.0; self.n()]);
        self.run(&mut bufs, k, &NullSink);
        if k % 2 == 1 {
            bufs.1
        } else {
            bufs.0
        }
    }

    /// Computes all iterates `[A x₀, A² x₀, …, Aᵏ x₀]`.
    pub fn krylov(&self, x0: &[f64], k: usize) -> Vec<Vec<f64>> {
        let n = self.n();
        let mut basis = vec![0.0; k * n];
        if k > 0 {
            let mut bufs = (x0.to_vec(), vec![0.0; n]);
            let sink = CollectSink::new(&mut basis, n, k);
            self.run(&mut bufs, k, &sink);
        }
        basis.chunks(n).map(|c| c.to_vec()).collect()
    }

    /// Computes `y = Σ_{i=0..=k} coeffs[i] · Aⁱ x₀` (`k = coeffs.len()-1`).
    pub fn sspmv(&self, coeffs: &[f64], x0: &[f64]) -> Vec<f64> {
        assert!(!coeffs.is_empty(), "need at least the alpha_0 coefficient");
        let n = self.n();
        assert_eq!(x0.len(), n);
        let k = coeffs.len() - 1;
        let mut y: Vec<f64> = x0.iter().map(|&v| coeffs[0] * v).collect();
        if k > 0 {
            let mut bufs = (x0.to_vec(), vec![0.0; n]);
            let sink = AccumSink::new(&mut y, coeffs);
            self.run(&mut bufs, k, &sink);
        }
        y
    }

    /// Executes `k` barrier-separated SpMV rounds, ping-ponging between the
    /// two buffers. After the call, iterate `k` is in `bufs.1` for odd `k`
    /// and `bufs.0` for even `k`.
    fn run<S: Sink>(&self, bufs: &mut (Vec<f64>, Vec<f64>), k: usize, sink: &S) {
        let n = self.n();
        assert_eq!(bufs.0.len(), n);
        assert_eq!(bufs.1.len(), n);
        let a = &self.a;
        let barrier = self.pool.barrier();
        let ranges = &self.ranges;
        let b0 = SharedSlice::new(&mut bufs.0);
        let b1 = SharedSlice::new(&mut bufs.1);
        self.pool.run(&|t| {
            let row_ptr = a.row_ptr();
            let col_idx = a.col_idx();
            let values = a.values();
            for i in 0..k {
                let (src, dst) = if i % 2 == 0 { (&b0, &b1) } else { (&b1, &b0) };
                for r in ranges[t].clone() {
                    let mut sum = 0.0;
                    for j in row_ptr[r]..row_ptr[r + 1] {
                        // SAFETY: src is read-only this round (writes go to
                        // dst; the barrier separates rounds).
                        sum += values[j] * unsafe { src.get(col_idx[j] as usize) };
                    }
                    // SAFETY: thread t owns rows in ranges[t].
                    unsafe {
                        dst.set(r, sum);
                        sink.emit(i + 1, r, sum);
                    }
                }
                barrier.wait();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::spmv::spmv;

    fn sample() -> Csr {
        Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 3.0, 3.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[2.0, 0.0, 1.0, 6.0],
        ])
    }

    fn reference_power(a: &Csr, x0: &[f64], k: usize) -> Vec<f64> {
        let mut x = x0.to_vec();
        let mut y = vec![0.0; x.len()];
        for _ in 0..k {
            spmv(a, &x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        x
    }

    #[test]
    fn power_matches_reference_serial_and_parallel() {
        let a = sample();
        let x0 = [1.0, -2.0, 0.5, 3.0];
        for t in [1, 2, 4] {
            let m = StandardMpk::new(&a, t).unwrap();
            for k in 0..=6 {
                let got = m.power(&x0, k);
                let want = reference_power(&a, &x0, k);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() / w.abs().max(1.0) < 1e-12, "t={t} k={k}");
                }
            }
        }
    }

    #[test]
    fn krylov_collects_each_power() {
        let a = sample();
        let x0 = [1.0, 1.0, 1.0, 1.0];
        let m = StandardMpk::new(&a, 2).unwrap();
        let basis = m.krylov(&x0, 4);
        assert_eq!(basis.len(), 4);
        for (i, b) in basis.iter().enumerate() {
            let want = reference_power(&a, &x0, i + 1);
            for (g, w) in b.iter().zip(&want) {
                assert!((g - w).abs() / w.abs().max(1.0) < 1e-12);
            }
        }
    }

    #[test]
    fn sspmv_folds_polynomial() {
        let a = sample();
        let x0 = [0.5, -1.0, 2.0, 1.0];
        let m = StandardMpk::new(&a, 3).unwrap();
        // y = 1*x0 - 2*A x0 + 0.5*A^3 x0
        let coeffs = [1.0, -2.0, 0.0, 0.5];
        let y = m.sspmv(&coeffs, &x0);
        for r in 0..4 {
            let want =
                x0[r] - 2.0 * reference_power(&a, &x0, 1)[r] + 0.5 * reference_power(&a, &x0, 3)[r];
            assert!((y[r] - want).abs() / want.abs().max(1.0) < 1e-12);
        }
    }

    #[test]
    fn k_zero_is_identity_or_alpha0() {
        let a = sample();
        let x0 = [1.0, 2.0, 3.0, 4.0];
        let m = StandardMpk::new(&a, 1).unwrap();
        assert_eq!(m.power(&x0, 0), x0.to_vec());
        assert_eq!(m.sspmv(&[2.0], &x0), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Csr::zero(2, 3);
        assert!(matches!(StandardMpk::new(&a, 1), Err(FbmpkError::NotSquare { .. })));
    }
}
