//! Level-blocked (cache-blocked) execution of `Aᵏ x₀`.
//!
//! The streaming FBMPK pipeline reads the matrix ⌈(k+1)/2⌉ times. When the
//! matrix exceeds the last-level cache but a *band of BFS shells* does not,
//! a different trade wins: group rows into breadth-first-search shells of
//! the symmetrized pattern ([`fbmpk_reorder::levels::bfs_level_schedule`]),
//! then advance a moving wavefront that computes `tile_powers` consecutive
//! powers of each shell before its matrix rows leave cache. Every matrix
//! row is then streamed from DRAM only ⌈k / tile_powers⌉ times — below the
//! FBMPK bound once `tile_powers > 2` — at the cost of extra
//! synchronization and a BFS preprocessing pass.
//!
//! # Wavefront schedule
//!
//! Shells have the containment property: computing `(A x)[r]` for rows of
//! shell `j` reads only `x` entries of shells `j−1 ..= j+1`. One *stage*
//! advances all shells through `kb = tile_powers` powers; within a stage,
//! *step* `s` runs substeps `(q, j = s + 1 − q)` for stage-local powers
//! `q = 1..=kb` in ascending order. The dependencies of `(q, j)` are
//! `(q−1, j+1)` (earlier substep of the same step), `(q−1, j)` (step
//! `s−1`) and `(q−1, j−1)` (step `s−2`) — all complete, so a pool barrier
//! after each substep is the only synchronization needed. Power `p` lives
//! in ring buffer `p mod (kb+1)`; exactly `kb+1` powers are live per stage,
//! so no live value is ever overwritten.
//!
//! The per-power, per-row results are emitted through the same [`Sink`]
//! interface as the streaming kernels, so `power`/`krylov`/`sspmv` all
//! work unchanged on top of either execution mode.

use crate::sink::Sink;
use fbmpk_obs::recorder::{Span, SpanKind};
use fbmpk_obs::Probe;
use fbmpk_parallel::{SharedSlice, ThreadPool};
use fbmpk_reorder::levels::{bfs_level_schedule, LevelSchedule};
use fbmpk_sparse::Csr;
use std::ops::Range;

/// How `Aᵏ x₀` traverses memory (the new execution axis next to
/// [`crate::SyncMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockingMode {
    /// The forward–backward streaming pipeline (paper Algorithm 2):
    /// ⌈(k+1)/2⌉ matrix reads, no extra preprocessing.
    #[default]
    Streaming,
    /// BFS-shell wavefront blocking: ⌈k / tile_powers⌉ matrix reads with
    /// the shell band held in cache across powers.
    LevelBlocked {
        /// Powers advanced per stage (`kb`). `None` picks the largest band
        /// whose working set fits the probed last-level cache.
        tile_powers: Option<usize>,
    },
}

impl BlockingMode {
    /// Stable lowercase tag for fingerprints and perf-DB records.
    pub fn tag(&self) -> &'static str {
        match self {
            BlockingMode::Streaming => "streaming",
            BlockingMode::LevelBlocked { .. } => "level-blocked",
        }
    }
}

/// Fallback LLC capacity when no sysfs cache hierarchy is readable.
pub const DEFAULT_LLC_BYTES: u64 = 32 * 1024 * 1024;

/// Parses a sysfs cache size string (`"512K"`, `"32768K"`, `"8M"`).
fn parse_cache_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    num.trim().parse::<u64>().ok().map(|v| v * mult)
}

/// Capacity of the last-level cache in bytes.
///
/// Resolution order: the `FBMPK_LLC_BYTES` environment variable (exact
/// byte count — also the test/CI override), then the deepest
/// unified/data cache under
/// `/sys/devices/system/cpu/cpu0/cache/index*/`, then
/// [`DEFAULT_LLC_BYTES`]. Not cached: callers probe once per plan build.
pub fn probe_llc_bytes() -> u64 {
    if let Ok(v) = std::env::var("FBMPK_LLC_BYTES") {
        if let Ok(b) = v.trim().parse::<u64>() {
            if b > 0 {
                return b;
            }
        }
    }
    let mut best: Option<(u32, u64)> = None;
    for idx in 0..10 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let Ok(ty) = std::fs::read_to_string(format!("{dir}/type")) else { break };
        let ty = ty.trim();
        if ty != "Unified" && ty != "Data" {
            continue;
        }
        let Some(level) = std::fs::read_to_string(format!("{dir}/level"))
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
        else {
            continue;
        };
        let Some(size) =
            std::fs::read_to_string(format!("{dir}/size")).ok().and_then(|v| parse_cache_size(&v))
        else {
            continue;
        };
        if best.is_none_or(|(bl, _)| level > bl) {
            best = Some((level, size));
        }
    }
    best.map(|(_, size)| size).unwrap_or(DEFAULT_LLC_BYTES)
}

/// Prepared state for level-blocked execution: the working matrix, its BFS
/// shells, and nnz-balanced per-shell thread partitions.
pub struct LevelBlockPlan {
    a: Csr,
    levels: LevelSchedule,
    /// `parts[l][t]` — thread `t`'s slice of shell `l`, as a range into
    /// `levels.order`.
    parts: Vec<Vec<Range<usize>>>,
    tile_powers: Option<usize>,
    llc_bytes: u64,
}

impl LevelBlockPlan {
    /// Builds the shells and partitions for `a` (in the numbering the
    /// kernels run in — i.e. already permuted when the plan reorders).
    pub fn new(a: &Csr, nthreads: usize, tile_powers: Option<usize>, llc_bytes: u64) -> Self {
        let _span = fbmpk_obs::phases::span("levelblock.build");
        assert!(nthreads >= 1);
        let levels = {
            let _bfs = fbmpk_obs::phases::span("levelblock.bfs");
            bfs_level_schedule(a)
        };
        let row_ptr = a.row_ptr();
        let mut parts = Vec::with_capacity(levels.nlevels());
        for l in 0..levels.nlevels() {
            let (lo, hi) = (levels.level_ptr[l], levels.level_ptr[l + 1]);
            // Greedy nnz-balanced contiguous split (each row weighted
            // nnz + 1 so empty rows still cost something).
            let total: usize = levels.order[lo..hi]
                .iter()
                .map(|&r| row_ptr[r as usize + 1] - row_ptr[r as usize] + 1)
                .sum();
            let mut ranges = Vec::with_capacity(nthreads);
            let mut cursor = lo;
            let mut acc = 0usize;
            for t in 0..nthreads {
                let target = (total * (t + 1)) / nthreads;
                let start = cursor;
                while cursor < hi && acc < target {
                    let r = levels.order[cursor] as usize;
                    acc += row_ptr[r + 1] - row_ptr[r] + 1;
                    cursor += 1;
                }
                ranges.push(start..cursor);
            }
            // Weight rounding may leave a tail; fold it into the last
            // thread so every row is owned exactly once.
            ranges.last_mut().expect("nthreads >= 1").end = hi;
            parts.push(ranges);
        }
        LevelBlockPlan { a: a.clone(), levels, parts, tile_powers, llc_bytes }
    }

    /// The BFS shells.
    pub fn levels(&self) -> &LevelSchedule {
        &self.levels
    }

    /// The LLC capacity the auto band sizing targets.
    pub fn llc_bytes(&self) -> u64 {
        self.llc_bytes
    }

    /// The band size (`kb`) one `Aᵏx₀` invocation will use: an explicit
    /// `tile_powers` clamped to `1..=k`, otherwise the largest band whose
    /// moving working set — `kb` shells of matrix rows (12 bytes per
    /// nonzero) plus their vector slots (`(kb+1) + 2` live values per
    /// row: the ring buffers and the gather halo) — fits half the LLC
    /// (the other half absorbs conflict misses and shared data).
    pub fn resolve_tile_powers(&self, k: usize) -> usize {
        assert!(k >= 1);
        if let Some(kb) = self.tile_powers {
            return kb.clamp(1, k);
        }
        let row_ptr = self.a.row_ptr();
        let mut max_shell_bytes = 0u64;
        for l in 0..self.levels.nlevels() {
            let rows = self.levels.level_rows(l);
            let nnz: usize =
                rows.iter().map(|&r| row_ptr[r as usize + 1] - row_ptr[r as usize]).sum();
            // Matrix: 8-byte value + 4-byte column per nonzero; vector
            // slots priced per power below.
            max_shell_bytes = max_shell_bytes.max(12 * nnz as u64 + 8 * rows.len() as u64);
        }
        if max_shell_bytes == 0 {
            return k;
        }
        let target = self.llc_bytes / 2;
        ((target / max_shell_bytes) as usize).clamp(1, k)
    }

    /// Runs the wavefront: computes `Aᵏ x₀` (in the plan's numbering),
    /// emitting every intermediate power through `sink`.
    ///
    /// # Errors
    /// [`crate::FbmpkError::WorkerPanicked`] when a worker closure panics.
    ///
    /// # Panics
    /// Panics when `k == 0`, `x0p.len()` mismatches, or the pool size
    /// disagrees with the partitioning.
    pub fn run_probed<S: Sink, P: Probe>(
        &self,
        pool: &ThreadPool,
        x0p: &[f64],
        k: usize,
        sink: &S,
        probe: &P,
    ) -> crate::Result<Vec<f64>> {
        assert!(k >= 1, "k must be at least 1 (k = 0 is the identity)");
        let n = self.a.nrows();
        assert_eq!(x0p.len(), n, "x0 length mismatch");
        if !self.parts.is_empty() {
            assert_eq!(self.parts[0].len(), pool.nthreads(), "pool/partition thread mismatch");
        }
        let kb = self.resolve_tile_powers(k);
        let nb = kb + 1;
        let mut bufs: Vec<Vec<f64>> = (0..nb).map(|_| vec![0.0; n]).collect();
        bufs[0].copy_from_slice(x0p);
        {
            let shared: Vec<SharedSlice<f64>> =
                bufs.iter_mut().map(|b| SharedSlice::new(b.as_mut_slice())).collect();
            let row_ptr = self.a.row_ptr();
            let col_idx = self.a.col_idx();
            let values = self.a.values();
            let order = &self.levels.order;
            let nlevels = self.levels.nlevels();
            let barrier = pool.barrier();
            #[cfg(feature = "simd")]
            let use_simd = fbmpk_sparse::simd::detect().is_accelerated();
            pool.try_run(&|t| {
                let mut base = 0usize;
                let mut stage = 0u32;
                while base < k {
                    let kb_eff = kb.min(k - base);
                    let t0 = probe.now();
                    for s in 0..(nlevels + kb_eff).saturating_sub(1) {
                        for q in 1..=kb_eff {
                            if let Some(j) = (s + 1).checked_sub(q) {
                                if j < nlevels {
                                    let p = base + q;
                                    let src = &shared[(p - 1) % nb];
                                    let dst = &shared[p % nb];
                                    #[cfg(feature = "simd")]
                                    let src_base = src.base_ptr();
                                    for idx in self.parts[j][t].clone() {
                                        let r = order[idx] as usize;
                                        let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                                        // SAFETY: the wavefront order plus
                                        // the per-substep barrier guarantee
                                        // power p-1 of shells j-1..=j+1 is
                                        // final before any row of shell j
                                        // reads it, and thread t owns the
                                        // dst rows of its partition.
                                        unsafe {
                                            #[cfg(feature = "simd")]
                                            if use_simd {
                                                let sum = fbmpk_sparse::simd::row_dot_ptr(
                                                    &col_idx[lo..hi],
                                                    &values[lo..hi],
                                                    src_base,
                                                    0.0,
                                                );
                                                dst.set(r, sum);
                                                sink.emit(p, r, sum);
                                                continue;
                                            }
                                            // 4-way unrolled dot, matching
                                            // the SIMD lowering and the
                                            // streaming kernels' accumulator
                                            // shape bit-for-bit.
                                            let main = hi - (hi - lo) % 4;
                                            let (mut s0, mut s1, mut s2, mut s3) =
                                                (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                                            let mut jj = lo;
                                            while jj < main {
                                                s0 += values[jj] * src.get(col_idx[jj] as usize);
                                                s1 += values[jj + 1]
                                                    * src.get(col_idx[jj + 1] as usize);
                                                s2 += values[jj + 2]
                                                    * src.get(col_idx[jj + 2] as usize);
                                                s3 += values[jj + 3]
                                                    * src.get(col_idx[jj + 3] as usize);
                                                jj += 4;
                                            }
                                            while jj < hi {
                                                s0 += values[jj] * src.get(col_idx[jj] as usize);
                                                jj += 1;
                                            }
                                            let sum = (s0 + s1) + (s2 + s3);
                                            dst.set(r, sum);
                                            sink.emit(p, r, sum);
                                        }
                                    }
                                }
                            }
                            // Substep barrier: publishes this substep's rows
                            // to the same-step successor substep. Every
                            // thread runs the identical (s, q) iteration
                            // space, so arrival counts always match.
                            barrier.wait();
                        }
                    }
                    if P::ENABLED {
                        let t1 = probe.now();
                        // SAFETY: `t` is this worker's own recorder lane.
                        unsafe {
                            probe.record(
                                t,
                                Span {
                                    kind: SpanKind::Tile,
                                    color: stage,
                                    block: Span::NO_ID,
                                    detail: kb_eff as u32,
                                    start_ns: t0,
                                    end_ns: t1,
                                },
                            );
                        }
                    }
                    base += kb_eff;
                    stage += 1;
                }
            })
            .map_err(crate::FbmpkError::from)?;
        }
        Ok(std::mem::take(&mut bufs[k % nb]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, NullSink};
    use fbmpk_obs::NoopProbe;
    use fbmpk_sparse::spmv::spmv;

    fn reference_powers(a: &Csr, x0: &[f64], k: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        let mut x = x0.to_vec();
        for _ in 0..k {
            let mut y = vec![0.0; x.len()];
            spmv(a, &x, &mut y);
            out.push(y.clone());
            x = y;
        }
        out
    }

    #[test]
    fn wavefront_matches_reference_all_k_and_bands() {
        let a = fbmpk_gen::poisson::grid2d_5pt(9, 6);
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) * 0.25 - 2.0).collect();
        let pool = ThreadPool::new(1);
        for kb in [1, 2, 3, 5] {
            let plan = LevelBlockPlan::new(&a, 1, Some(kb), DEFAULT_LLC_BYTES);
            for k in 1..=7 {
                let want = reference_powers(&a, &x0, k).pop().unwrap();
                let got = plan.run_probed(&pool, &x0, k, &NullSink, &NoopProbe).unwrap();
                for (g, w) in got.iter().zip(&want) {
                    let scale = w.abs().max(1.0);
                    assert!((g - w).abs() / scale < 1e-12, "kb={kb} k={k}");
                }
            }
        }
    }

    #[test]
    fn wavefront_parallel_matches_serial() {
        let a = fbmpk_gen::poisson::grid2d_5pt(8, 8);
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let k = 5;
        let serial = LevelBlockPlan::new(&a, 1, Some(3), DEFAULT_LLC_BYTES)
            .run_probed(&ThreadPool::new(1), &x0, k, &NullSink, &NoopProbe)
            .unwrap();
        let parallel = LevelBlockPlan::new(&a, 3, Some(3), DEFAULT_LLC_BYTES)
            .run_probed(&ThreadPool::new(3), &x0, k, &NullSink, &NoopProbe)
            .unwrap();
        // Same per-row dot products in the same order — bitwise equal.
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn wavefront_sink_sees_every_power() {
        let a = fbmpk_gen::poisson::grid2d_5pt(5, 5);
        let n = a.nrows();
        let x0 = vec![1.0; n];
        let k = 4;
        let plan = LevelBlockPlan::new(&a, 1, Some(2), DEFAULT_LLC_BYTES);
        let pool = ThreadPool::new(1);
        let mut basis = vec![0.0; k * n];
        {
            let sink = CollectSink::new(&mut basis, n, k);
            plan.run_probed(&pool, &x0, k, &sink, &NoopProbe).unwrap();
        }
        let want = reference_powers(&a, &x0, k);
        for p in 0..k {
            for r in 0..n {
                let w = want[p][r];
                let g = basis[p * n + r];
                assert!((g - w).abs() / w.abs().max(1.0) < 1e-12, "power {} row {r}", p + 1);
            }
        }
    }

    #[test]
    fn auto_band_respects_llc() {
        let a = fbmpk_gen::poisson::grid2d_5pt(16, 16);
        // A tiny LLC forces kb = 1; a huge one allows kb = k.
        let tiny = LevelBlockPlan::new(&a, 1, None, 1024);
        assert_eq!(tiny.resolve_tile_powers(6), 1);
        let huge = LevelBlockPlan::new(&a, 1, None, 1 << 40);
        assert_eq!(huge.resolve_tile_powers(6), 6);
        // Explicit tile_powers is clamped to 1..=k.
        let fixed = LevelBlockPlan::new(&a, 1, Some(100), DEFAULT_LLC_BYTES);
        assert_eq!(fixed.resolve_tile_powers(4), 4);
    }

    #[test]
    fn parse_cache_sizes() {
        assert_eq!(parse_cache_size("512K"), Some(512 * 1024));
        assert_eq!(parse_cache_size("8M"), Some(8 * 1024 * 1024));
        assert_eq!(parse_cache_size(" 32768K\n"), Some(32768 * 1024));
        assert_eq!(parse_cache_size("123"), Some(123));
        assert_eq!(parse_cache_size("bogus"), None);
    }

    #[test]
    fn probe_llc_env_override() {
        // The env var is the deterministic path; sysfs availability varies.
        std::env::set_var("FBMPK_LLC_BYTES", "262144");
        assert_eq!(probe_llc_bytes(), 262144);
        std::env::remove_var("FBMPK_LLC_BYTES");
        assert!(probe_llc_bytes() > 0);
    }
}
