//! Inspector–executor auto-tuning for SpMV-sequence hot paths.
//!
//! OSKI-style: the FBMPK use case (Krylov solvers, polynomial filters)
//! performs *sequences* of products with one matrix, so a one-off
//! inspection pass is amortized over many invocations. The inspector
//! computes structural features, a cost model proposes candidate kernel
//! variants, and (optionally) a one-shot micro-probe times the candidates
//! and keeps the fastest. The resulting [`TunedPlan`] is cached by a
//! structural fingerprint so repeated planning against the same matrix —
//! the common pattern in solver setup code — costs one hash lookup.
//!
//! The variant space:
//!
//! * [`KernelVariant::CsrScalar`] — the reference row loop,
//! * [`KernelVariant::CsrUnrolled4`] — 4 independent accumulators per row,
//! * [`KernelVariant::CsrRowSplit`] — scalar for short rows, unrolled for
//!   long ones (skewed row-length distributions),
//! * [`KernelVariant::CsrSimd`] — lane-vectorized row dot products
//!   (offered only when [`fbmpk_sparse::simd::detect`] finds an
//!   accelerated instruction set),
//! * [`KernelVariant::SellCs`] — SELL-C-σ chunked storage (regular short
//!   rows; serial only).
//!
//! Parallel execution always partitions rows by merge-path diagonals over
//! `row_ptr` (see `fbmpk_parallel::partition::merge_path_partition`), so a
//! thread's share of `rows + nnz` work is bounded regardless of skew.

use crate::levelblock::{probe_llc_bytes, LevelBlockPlan};
use crate::plan::{FbmpkOptions, FbmpkPlan, ObsOptions};
use crate::schedule::SyncMode;
use crate::sink::NullSink;
use fbmpk_obs::recorder::{Span, SpanKind};
use fbmpk_obs::{NoopProbe, Probe, Recorder, SpanProbe};
use fbmpk_parallel::partition::merge_path_partition;
use fbmpk_parallel::{SharedSlice, ThreadPool};
use fbmpk_reorder::{AbmcParams, BlockingStrategy, Graph};
use fbmpk_sparse::sellcs::SellCs;
use fbmpk_sparse::simd::{self, SimdLevel};
use fbmpk_sparse::spmv::{spmv_rows, spmv_rows_rowsplit, spmv_rows_unrolled4};
use fbmpk_sparse::stats::MatrixStats;
use fbmpk_sparse::Csr;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Row-length threshold below which the row-split variant keeps the plain
/// scalar loop (also the unroll width, so the short path is exact-scalar).
pub const ROWSPLIT_THRESHOLD: usize = 4;

/// Default SELL chunk height C.
pub const SELL_C: usize = 8;

/// Default SELL sorting window σ (a multiple of [`SELL_C`]).
pub const SELL_SIGMA: usize = 64;

/// Maximum acceptable SELL padding ratio; beyond this the format wastes
/// more bandwidth on padding than chunking can recover.
pub const SELL_MAX_PADDING: f64 = 1.3;

/// The kernel variants the tuner selects among.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Reference scalar CSR row loop.
    CsrScalar,
    /// 4-way unrolled CSR row loop.
    CsrUnrolled4,
    /// Per-row dispatch: scalar below `threshold` nonzeros, unrolled above.
    CsrRowSplit {
        /// Row-length cutoff between the scalar and unrolled paths.
        threshold: usize,
    },
    /// Lane-vectorized row dot products via `fbmpk_sparse::simd`.
    CsrSimd {
        /// Vector width in f64 lanes of the instruction set the cost model
        /// saw when it offered this candidate (descriptive; dispatch always
        /// follows the runtime-detected level).
        width: usize,
    },
    /// SELL-C-σ chunked execution (serial only).
    SellCs {
        /// Chunk height.
        c: usize,
        /// Sorting window.
        sigma: usize,
    },
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelVariant::CsrScalar => write!(f, "csr-scalar"),
            KernelVariant::CsrUnrolled4 => write!(f, "csr-unrolled4"),
            KernelVariant::CsrRowSplit { threshold } => write!(f, "csr-rowsplit(t={threshold})"),
            KernelVariant::CsrSimd { width } => write!(f, "csr-simd{width}"),
            KernelVariant::SellCs { c, sigma } => write!(f, "sell-{c}-{sigma}"),
        }
    }
}

/// Structural features the inspector extracts — the cost model's inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixFeatures {
    /// Dimension.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Mean nonzeros per row.
    pub mean_row_nnz: f64,
    /// Variance of nonzeros per row.
    pub var_row_nnz: f64,
    /// Coefficient of variation of row lengths (`sqrt(var) / mean`;
    /// 0 = perfectly regular).
    pub row_cv: f64,
    /// Longest row.
    pub max_row_nnz: usize,
    /// Structural bandwidth `max |i - j|`.
    pub bandwidth: usize,
    /// Numerically symmetric (tol `1e-12`).
    pub symmetric: bool,
}

impl MatrixFeatures {
    /// Inspects `a` in one pass over the structure (plus the symmetry
    /// check, which the underlying stats routine performs on the values).
    pub fn inspect(a: &Csr) -> Self {
        let stats = MatrixStats::compute(a);
        let n = stats.nrows;
        let mean = stats.nnz_per_row;
        let var = if n == 0 {
            0.0
        } else {
            (0..n)
                .map(|r| {
                    let d = a.row_nnz(r) as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / n as f64
        };
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        MatrixFeatures {
            n,
            nnz: stats.nnz,
            mean_row_nnz: mean,
            var_row_nnz: var,
            row_cv: cv,
            max_row_nnz: stats.max_row_nnz,
            bandwidth: stats.bandwidth,
            symmetric: stats.symmetric,
        }
    }
}

/// Tuning controls.
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// Worker threads for the executor.
    pub nthreads: usize,
    /// Run the one-shot micro-probe (time each candidate, keep the
    /// fastest). When `false` the cost model's first choice wins.
    pub probe: bool,
    /// SpMV repetitions per candidate in the micro-probe.
    pub probe_reps: usize,
    /// Sweep synchronization mode handed to FBMPK plans derived from this
    /// tuning via [`TunedPlan::fbmpk_plan`]. Plain SpMV has no intra-sweep
    /// dependencies, so the mode does not affect the tuned executor itself.
    pub sync: SyncMode,
    /// In-kernel observability: when recording, each tuned SpMV appends
    /// one per-thread span to the plan's recorder, and FBMPK plans
    /// derived via [`TunedPlan::fbmpk_plan`] record too.
    pub obs: ObsOptions,
    /// ABMC blocking strategy for FBMPK plans derived via
    /// [`TunedPlan::fbmpk_plan_auto`]. `None` (the default) lets the
    /// cut-edge cost model choose: the strategy whose partition cuts the
    /// fewest row-structure edges — and therefore induces the fewest
    /// cross-block P2P dependency waits — wins. The choice is part of
    /// the [`TunedPlan::cached`] key, so explicit and auto-selected
    /// tunings never share a cache slot.
    pub abmc_blocking: Option<BlockingStrategy>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            nthreads: 1,
            probe: true,
            probe_reps: 3,
            sync: SyncMode::default(),
            obs: ObsOptions::default(),
            abmc_blocking: None,
        }
    }
}

/// Stable cache tag for the partitioner axis of [`TunedPlan::cached`]
/// (0 = auto-select by cut edges).
fn partitioner_tag(s: Option<BlockingStrategy>) -> u8 {
    match s {
        None => 0,
        Some(BlockingStrategy::Contiguous) => 1,
        Some(BlockingStrategy::Aggregated) => 2,
        Some(BlockingStrategy::Multilevel) => 3,
    }
}

/// Feeds the tune-cache hit/miss counters when live telemetry is on; one
/// relaxed bool load otherwise.
fn tune_cache_count(hit: bool) {
    if !fbmpk_obs::live::enabled() {
        return;
    }
    let (name, help) = if hit {
        ("fbmpk_tune_cache_hits_total", "TunedPlan::cached lookups served from the plan cache")
    } else {
        ("fbmpk_tune_cache_misses_total", "TunedPlan::cached lookups that built a fresh plan")
    };
    fbmpk_obs::live::global().counter(name, help, 1).inc(0);
}

/// What the tuner decided and why — surfaced by `repro tune`.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The selected variant.
    pub variant: KernelVariant,
    /// `(variant, best seconds per SpMV)` for every probed candidate;
    /// empty when the probe was disabled.
    pub probed: Vec<(KernelVariant, f64)>,
    /// Probe time of the scalar baseline (0 when not probed).
    pub scalar_seconds: f64,
    /// Probe time of the selected variant (0 when not probed).
    pub chosen_seconds: f64,
    /// SELL padding ratio when a SELL candidate was built.
    pub sell_padding: Option<f64>,
    /// Seconds the whole inspection + selection took.
    pub inspect_seconds: f64,
}

impl TuneReport {
    /// Probe-measured speedup of the chosen variant over scalar CSR
    /// (1.0 when the probe was disabled).
    pub fn probed_speedup(&self) -> f64 {
        if self.scalar_seconds > 0.0 && self.chosen_seconds > 0.0 {
            self.scalar_seconds / self.chosen_seconds
        } else {
            1.0
        }
    }
}

/// A tuned, reusable SpMV executor: matrix storage (CSR and, when
/// selected, SELL-C-σ), kernel variant, merge-path row partition, and
/// worker pool.
pub struct TunedPlan {
    a: Csr,
    sell: Option<SellCs>,
    variant: KernelVariant,
    simd: SimdLevel,
    features: MatrixFeatures,
    ranges: Vec<Range<usize>>,
    pool: Arc<ThreadPool>,
    sync: SyncMode,
    obs: ObsOptions,
    recorder: Option<Arc<Recorder>>,
    /// BFS-shell blocking plan for [`TunedPlan::power`], built lazily on
    /// the first deep-power call (the BFS costs an O(nnz) pass that plain
    /// SpMV users should not pay). `None` inside means "built, not
    /// profitable on this matrix".
    levelblock: OnceLock<Option<LevelBlockPlan>>,
    /// Explicit strategy override from [`TuneOptions::abmc_blocking`].
    abmc_blocking: Option<BlockingStrategy>,
    /// Lazily-resolved cut-edge comparison (built on the first
    /// [`TunedPlan::blocking_strategy`] call without an override; the
    /// partitions cost O(nnz·levels) that plain-SpMV users never pay).
    selected_blocking: OnceLock<(BlockingStrategy, Vec<(BlockingStrategy, usize)>)>,
    report: TuneReport,
}

impl TunedPlan {
    /// Inspects `a`, selects a variant, and builds the executor.
    ///
    /// # Panics
    /// Panics when `a` is rectangular or `options.nthreads == 0`.
    pub fn new(a: &Csr, options: TuneOptions) -> Self {
        Self::with_pool(a, options, Arc::new(ThreadPool::new(options.nthreads)))
    }

    /// Like [`TunedPlan::new`] but reusing an existing pool (whose size
    /// must equal `options.nthreads`).
    ///
    /// # Panics
    /// Panics on dimension or thread-count mismatches.
    pub fn with_pool(a: &Csr, options: TuneOptions, pool: Arc<ThreadPool>) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "tuning requires a square matrix");
        assert!(options.nthreads > 0, "need at least one thread");
        assert_eq!(pool.nthreads(), options.nthreads, "pool size mismatch");
        let t0 = Instant::now();
        let _whole = fbmpk_obs::phases::span("tune.inspect");
        let features = {
            let _p = fbmpk_obs::phases::span("tune.inspect.features");
            MatrixFeatures::inspect(a)
        };
        let simd_level = simd::detect();
        let candidates = cost_model_candidates(&features, options.nthreads, simd_level);

        // Build SELL storage once if any candidate needs it, and drop the
        // candidate when padding exceeds the profitability bound.
        let mut sell: Option<SellCs> = None;
        let mut sell_padding = None;
        let candidates: Vec<KernelVariant> = {
            let _p = fbmpk_obs::phases::span("tune.inspect.sell_build");
            candidates
                .into_iter()
                .filter(|cand| match *cand {
                    KernelVariant::SellCs { c, sigma } => {
                        let built = SellCs::from_csr(a, c, sigma);
                        let ratio = built.padding_ratio();
                        sell_padding = Some(ratio);
                        if ratio <= SELL_MAX_PADDING {
                            sell = Some(built);
                            true
                        } else {
                            false
                        }
                    }
                    _ => true,
                })
                .collect()
        };

        let ranges = merge_path_partition(a.row_ptr(), options.nthreads);

        let (variant, probed) = if options.probe && features.nnz > 0 {
            let _p = fbmpk_obs::phases::span("tune.inspect.probe");
            probe_candidates(a, sell.as_ref(), &ranges, &pool, &candidates, options.probe_reps)
        } else {
            // Cost-model order is best-first; candidates[0] always exists
            // (the scalar baseline is unconditional).
            (candidates[0], Vec::new())
        };
        if !matches!(variant, KernelVariant::SellCs { .. }) {
            // Keep SELL storage only when it won; otherwise it is dead weight.
            sell = None;
        }

        let scalar_seconds =
            probed.iter().find(|(v, _)| *v == KernelVariant::CsrScalar).map_or(0.0, |&(_, s)| s);
        let chosen_seconds = probed.iter().find(|(v, _)| *v == variant).map_or(0.0, |&(_, s)| s);
        let report = TuneReport {
            variant,
            probed,
            scalar_seconds,
            chosen_seconds,
            sell_padding,
            inspect_seconds: t0.elapsed().as_secs_f64(),
        };
        let recorder = if options.obs.record {
            Some(Arc::new(Recorder::new(options.nthreads, options.obs.span_capacity)))
        } else {
            None
        };
        TunedPlan {
            a: a.clone(),
            sell,
            variant,
            simd: simd_level,
            features,
            ranges,
            pool,
            sync: options.sync,
            obs: options.obs,
            recorder,
            levelblock: OnceLock::new(),
            abmc_blocking: options.abmc_blocking,
            selected_blocking: OnceLock::new(),
            report,
        }
    }

    /// Returns the cached plan for `a` (building and inserting it on the
    /// first call). The cache key is a structural+numerical fingerprint of
    /// the matrix plus the thread count and the detected SIMD level, so
    /// distinct matrices, executor widths, or CPU feature sets (e.g. a
    /// plan serialized under `FBMPK_SIMD=scalar` and reloaded with AVX2
    /// enabled) get distinct plans.
    pub fn cached(a: &Csr, options: TuneOptions) -> Arc<TunedPlan> {
        type PlanCache = Mutex<HashMap<(u64, usize, u8, u8, bool, u8), Arc<TunedPlan>>>;
        static CACHE: OnceLock<PlanCache> = OnceLock::new();
        let key = (
            fingerprint(a),
            options.nthreads,
            options.sync as u8,
            simd::detect() as u8,
            options.obs.record,
            partitioner_tag(options.abmc_blocking),
        );
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(plan) = cache.lock().expect("tune cache lock").get(&key) {
            tune_cache_count(true);
            return Arc::clone(plan);
        }
        tune_cache_count(false);
        // Build outside the lock: planning can take milliseconds and must
        // not serialize unrelated lookups.
        let plan = Arc::new(TunedPlan::new(a, options));
        let mut guard = cache.lock().expect("tune cache lock");
        Arc::clone(guard.entry(key).or_insert(plan))
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.a.nrows()
    }

    /// The selected kernel variant.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The SIMD level detected when this plan was built (also part of the
    /// [`TunedPlan::cached`] key, so a feature-set change invalidates
    /// cached tunings).
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// The inspector's features.
    pub fn features(&self) -> &MatrixFeatures {
        &self.features
    }

    /// The tuning report (probe timings, selection rationale inputs).
    pub fn report(&self) -> &TuneReport {
        &self.report
    }

    /// The merge-path row partition the parallel executor uses.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// The sweep synchronization mode plans derived from this tuning use.
    pub fn sync_mode(&self) -> SyncMode {
        self.sync
    }

    /// The span recorder, when [`ObsOptions::record`] was set.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Builds an FBMPK plan for the same matrix that *shares* this plan's
    /// worker pool and inherits its [`SyncMode`] — the bridge from tuned
    /// plain-SpMV sequences to the fused forward/backward kernel.
    /// `reorder` supplies the ABMC parameters (required whenever the pool
    /// is parallel, same as [`FbmpkPlan::new`]).
    ///
    /// # Errors
    /// Propagates [`FbmpkPlan::with_pool`] errors (e.g. a parallel pool
    /// without reordering).
    pub fn fbmpk_plan(&self, reorder: Option<AbmcParams>) -> crate::Result<FbmpkPlan> {
        let options = FbmpkOptions {
            nthreads: self.pool.nthreads(),
            reorder,
            sync: self.sync,
            obs: self.obs,
            ..FbmpkOptions::default()
        };
        FbmpkPlan::with_pool(&self.a, options, Arc::clone(&self.pool))
    }

    /// The ABMC blocking strategy the tuner picks for `nblocks` blocks:
    /// the [`TuneOptions::abmc_blocking`] override when set, otherwise
    /// the strategy whose partition cuts the fewest row-structure edges
    /// (see [`select_blocking_strategy`]). The comparison runs once per
    /// tuned plan and is cached for the first `nblocks` asked.
    pub fn blocking_strategy(&self, nblocks: usize) -> BlockingStrategy {
        if let Some(s) = self.abmc_blocking {
            return s;
        }
        self.selected_blocking.get_or_init(|| select_blocking_strategy(&self.a, nblocks)).0
    }

    /// The per-strategy cut-edge counts behind the auto selection —
    /// `None` until [`TunedPlan::blocking_strategy`] has resolved them
    /// (or forever, under an explicit override).
    pub fn blocking_cut_edges(&self) -> Option<&[(BlockingStrategy, usize)]> {
        self.selected_blocking.get().map(|(_, cuts)| cuts.as_slice())
    }

    /// Like [`TunedPlan::fbmpk_plan`], with ABMC parameters assembled
    /// from `nblocks` and the tuner-selected blocking strategy.
    ///
    /// # Errors
    /// Propagates [`FbmpkPlan::with_pool`] errors.
    pub fn fbmpk_plan_auto(&self, nblocks: usize) -> crate::Result<FbmpkPlan> {
        let params =
            AbmcParams { nblocks, strategy: self.blocking_strategy(nblocks), ..Default::default() };
        self.fbmpk_plan(Some(params))
    }

    /// Computes `y = A x` with the tuned kernel.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        // Dispatch on the recorder: the common (no-recorder) case
        // monomorphizes to the uninstrumented executor.
        match &self.recorder {
            Some(rec) => self.spmv_probed(x, y, &SpanProbe::new(rec)),
            None => self.spmv_probed(x, y, &NoopProbe),
        }
    }

    fn spmv_probed<P: Probe>(&self, x: &[f64], y: &mut [f64], probe: &P) {
        assert_eq!(x.len(), self.a.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.a.nrows(), "y length must equal nrows");
        if let Some(sell) = &self.sell {
            let t0 = probe.now();
            sell.spmv(x, y);
            if P::ENABLED {
                // SAFETY: serial path — lane 0 belongs to this thread.
                unsafe { probe.record(0, spmv_span(self.a.nrows(), t0, probe.now())) };
            }
            return;
        }
        if self.pool.nthreads() == 1 {
            let t0 = probe.now();
            run_variant(self.variant, &self.a, x, y, 0, self.a.nrows());
            if P::ENABLED {
                // SAFETY: serial path — lane 0 belongs to this thread.
                unsafe { probe.record(0, spmv_span(self.a.nrows(), t0, probe.now())) };
            }
            return;
        }
        let variant = self.variant;
        let a = &self.a;
        let ranges = &self.ranges;
        let shared = SharedSlice::new(y);
        self.pool.run(&|t| {
            let r = ranges[t].clone();
            let t0 = probe.now();
            // SAFETY: ranges are disjoint; thread t writes only rows in
            // ranges[t], and x is read-only for the whole call.
            let yt = unsafe { shared.slice_mut(r.clone()) };
            // The variant kernels index the output by absolute row, so hand
            // each thread the full-length view of its own rows.
            run_variant_into(variant, a, x, yt, r.start, r.end);
            if P::ENABLED {
                // SAFETY: `t` is this worker's own lane.
                unsafe { probe.record(t, spmv_span(r.len(), t0, probe.now())) };
            }
        });
    }

    /// Computes `y = A x` with the scalar reference kernel on the same
    /// partition and pool — the baseline `repro tune` reports speedups
    /// against.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn spmv_scalar(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_with(KernelVariant::CsrScalar, x, y);
    }

    /// Computes `y = A x` with an explicit CSR kernel variant on the same
    /// partition and pool — the harness's scalar/unrolled/SIMD comparison
    /// rows all run through here so only the inner kernel differs.
    ///
    /// # Panics
    /// Panics on length mismatches or a [`KernelVariant::SellCs`] variant
    /// (SELL needs built chunk storage; use [`TunedPlan::spmv`] on a plan
    /// that selected it).
    pub fn spmv_with(&self, variant: KernelVariant, x: &[f64], y: &mut [f64]) {
        assert!(
            !matches!(variant, KernelVariant::SellCs { .. }),
            "SELL has no row-range form; spmv_with takes CSR variants only"
        );
        assert_eq!(x.len(), self.a.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.a.nrows(), "y length must equal nrows");
        if self.pool.nthreads() == 1 {
            run_variant(variant, &self.a, x, y, 0, self.a.nrows());
            return;
        }
        let a = &self.a;
        let ranges = &self.ranges;
        let shared = SharedSlice::new(y);
        self.pool.run(&|t| {
            let r = ranges[t].clone();
            // SAFETY: disjoint ranges per thread, x read-only.
            let yt = unsafe { shared.slice_mut(r.clone()) };
            run_variant_into(variant, a, x, yt, r.start, r.end);
        });
    }

    /// Computes `Aᵏ x₀` by `k` tuned SpMV rounds — or, for deep powers
    /// (`k >= 4`) where the BFS-shell working set fits the last-level
    /// cache, by the level-blocked wavefront schedule, which streams the
    /// matrix only `⌈k / kb⌉` times instead of `k`.
    pub fn power(&self, x0: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(x0.len(), self.n(), "x0 length mismatch");
        if k >= 4 {
            if let Some(lb) = self.level_block_for(k) {
                let run = match &self.recorder {
                    Some(rec) => lb.run_probed(&self.pool, x0, k, &NullSink, &SpanProbe::new(rec)),
                    None => lb.run_probed(&self.pool, x0, k, &NullSink, &NoopProbe),
                };
                if let Ok(out) = run {
                    return out;
                }
                // A worker fault degrades to the streaming rounds below.
            }
        }
        let mut x = x0.to_vec();
        if k == 0 {
            return x;
        }
        let mut y = vec![0.0; self.n()];
        for _ in 0..k {
            self.spmv(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        x
    }

    /// The level-blocking plan when it is profitable for this `k`: built
    /// once per tuned plan, and used only when the auto-sized band covers
    /// at least two powers (otherwise the wavefront degenerates to
    /// barrier-heavy streaming with no traffic savings).
    fn level_block_for(&self, k: usize) -> Option<&LevelBlockPlan> {
        let lb = self
            .levelblock
            .get_or_init(|| {
                if self.features.nnz == 0 {
                    return None;
                }
                let lb =
                    LevelBlockPlan::new(&self.a, self.pool.nthreads(), None, probe_llc_bytes());
                // A single shell means the whole matrix is one tile —
                // blocking cannot beat streaming there.
                (lb.levels().nlevels() >= 2).then_some(lb)
            })
            .as_ref()?;
        (lb.resolve_tile_powers(k) >= 2).then_some(lb)
    }

    /// Computes `y = Σ_{i=0..=k} coeffs[i] · Aⁱ x₀` (`k = coeffs.len()-1`)
    /// as a sequence of tuned SpMVs.
    ///
    /// # Panics
    /// Panics when `coeffs` is empty or `x0.len() != n`.
    pub fn sspmv(&self, coeffs: &[f64], x0: &[f64]) -> Vec<f64> {
        assert!(!coeffs.is_empty(), "need at least the alpha_0 coefficient");
        assert_eq!(x0.len(), self.n(), "x0 length mismatch");
        let mut acc: Vec<f64> = x0.iter().map(|&v| coeffs[0] * v).collect();
        let mut x = x0.to_vec();
        let mut y = vec![0.0; self.n()];
        for &c in &coeffs[1..] {
            self.spmv(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
            if c != 0.0 {
                for (a, &v) in acc.iter_mut().zip(&x) {
                    *a += c * v;
                }
            }
        }
        acc
    }
}

/// One tuned-SpMV span (serial or one thread's share).
#[inline(always)]
fn spmv_span(rows: usize, start_ns: u64, end_ns: u64) -> Span {
    Span {
        kind: SpanKind::Spmv,
        color: Span::NO_ID,
        block: Span::NO_ID,
        detail: rows as u32,
        start_ns,
        end_ns,
    }
}

/// Orders candidate variants best-first from structural features plus the
/// detected SIMD level. The scalar baseline is always present (and always
/// last unless nothing else applies), so `[0]` is the model's pick when
/// probing is off.
fn cost_model_candidates(
    f: &MatrixFeatures,
    nthreads: usize,
    simd: SimdLevel,
) -> Vec<KernelVariant> {
    let mut out = Vec::new();
    let mean = f.mean_row_nnz;
    // SELL-C-σ pays off on regular row lengths (low CV keeps padding
    // small) and is implemented serial-only. `from_csr` cost is bounded by
    // the padding filter applied by the caller.
    if nthreads == 1 && f.n >= SELL_SIGMA && mean >= 2.0 && f.row_cv <= 0.6 {
        out.push(KernelVariant::SellCs { c: SELL_C, sigma: SELL_SIGMA });
    }
    // Vector lanes need rows long enough to fill at least one gather;
    // below that the lane setup dominates and the scalar paths win.
    if simd.is_accelerated() && mean >= 4.0 {
        out.push(KernelVariant::CsrSimd { width: simd.width() });
    }
    // Unrolling needs rows long enough to fill 4 accumulators; skewed
    // distributions prefer the per-row dispatch so short rows skip the
    // unroll setup.
    if mean >= 4.0 {
        if f.row_cv > 0.5 {
            out.push(KernelVariant::CsrRowSplit { threshold: ROWSPLIT_THRESHOLD });
            out.push(KernelVariant::CsrUnrolled4);
        } else {
            out.push(KernelVariant::CsrUnrolled4);
            out.push(KernelVariant::CsrRowSplit { threshold: ROWSPLIT_THRESHOLD });
        }
    } else if f.max_row_nnz > 2 * ROWSPLIT_THRESHOLD {
        // Mostly-short rows with a heavy tail: only the dispatching
        // variant can win.
        out.push(KernelVariant::CsrRowSplit { threshold: ROWSPLIT_THRESHOLD });
    }
    out.push(KernelVariant::CsrScalar);
    out
}

/// Runs the row-range kernel for `variant` writing into a full-length
/// output slice (`y.len() == a.nrows()`).
fn run_variant(variant: KernelVariant, a: &Csr, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
    match variant {
        KernelVariant::CsrScalar => spmv_rows(a, x, y, lo, hi),
        KernelVariant::CsrUnrolled4 => spmv_rows_unrolled4(a, x, y, lo, hi),
        KernelVariant::CsrRowSplit { threshold } => spmv_rows_rowsplit(a, x, y, lo, hi, threshold),
        KernelVariant::CsrSimd { .. } => simd::spmv_rows_simd(a, x, y, lo, hi),
        // SELL has no row-range form; executor handles it before dispatch.
        KernelVariant::SellCs { .. } => unreachable!("SELL dispatches whole-matrix"),
    }
}

/// Like [`run_variant`] but `y` is the sub-slice for rows `lo..hi` only
/// (the parallel path hands each thread just its own rows).
fn run_variant_into(
    variant: KernelVariant,
    a: &Csr,
    x: &[f64],
    y: &mut [f64],
    lo: usize,
    hi: usize,
) {
    debug_assert_eq!(y.len(), hi - lo);
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    match variant {
        KernelVariant::CsrScalar => {
            for r in lo..hi {
                let mut sum = 0.0;
                for j in row_ptr[r]..row_ptr[r + 1] {
                    sum += values[j] * x[col_idx[j] as usize];
                }
                y[r - lo] = sum;
            }
        }
        KernelVariant::CsrUnrolled4 => {
            for r in lo..hi {
                let (s, e) = (row_ptr[r], row_ptr[r + 1]);
                y[r - lo] = fbmpk_sparse::spmv::row_dot_unrolled4(&col_idx[s..e], &values[s..e], x);
            }
        }
        KernelVariant::CsrRowSplit { threshold } => {
            for r in lo..hi {
                let (s, e) = (row_ptr[r], row_ptr[r + 1]);
                if e - s <= threshold {
                    let mut sum = 0.0;
                    for j in s..e {
                        sum += values[j] * x[col_idx[j] as usize];
                    }
                    y[r - lo] = sum;
                } else {
                    y[r - lo] =
                        fbmpk_sparse::spmv::row_dot_unrolled4(&col_idx[s..e], &values[s..e], x);
                }
            }
        }
        KernelVariant::CsrSimd { .. } => {
            for r in lo..hi {
                let (s, e) = (row_ptr[r], row_ptr[r + 1]);
                y[r - lo] = simd::row_dot(&col_idx[s..e], &values[s..e], x);
            }
        }
        KernelVariant::SellCs { .. } => unreachable!("SELL dispatches whole-matrix"),
    }
}

/// Times each candidate (`reps` SpMVs, keep the best rep) and returns the
/// fastest plus all measurements.
fn probe_candidates(
    a: &Csr,
    sell: Option<&SellCs>,
    ranges: &[Range<usize>],
    pool: &Arc<ThreadPool>,
    candidates: &[KernelVariant],
    reps: usize,
) -> (KernelVariant, Vec<(KernelVariant, f64)>) {
    let n = a.nrows();
    // A deterministic, nonzero probe vector; values are irrelevant to
    // timing but must not be denormal.
    let x: Vec<f64> = (0..n).map(|i| 1.0 + 0.001 * (i % 97) as f64).collect();
    let mut y = vec![0.0; n];
    let reps = reps.max(1);
    let mut measured = Vec::with_capacity(candidates.len() + 1);
    let mut run_one = |variant: KernelVariant| -> f64 {
        let mut best = f64::INFINITY;
        // One untimed warm-up fills caches and faults pages.
        run_probe_spmv(variant, a, sell, ranges, pool, &x, &mut y);
        for _ in 0..reps {
            let t0 = Instant::now();
            run_probe_spmv(variant, a, sell, ranges, pool, &x, &mut y);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    for &cand in candidates {
        let secs = run_one(cand);
        measured.push((cand, secs));
    }
    if !measured.iter().any(|(v, _)| *v == KernelVariant::CsrScalar) {
        let secs = run_one(KernelVariant::CsrScalar);
        measured.push((KernelVariant::CsrScalar, secs));
    }
    let best = measured
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least the scalar candidate")
        .0;
    (best, measured)
}

fn run_probe_spmv(
    variant: KernelVariant,
    a: &Csr,
    sell: Option<&SellCs>,
    ranges: &[Range<usize>],
    pool: &Arc<ThreadPool>,
    x: &[f64],
    y: &mut [f64],
) {
    if let KernelVariant::SellCs { .. } = variant {
        sell.expect("SELL candidate requires built storage").spmv(x, y);
        return;
    }
    if pool.nthreads() == 1 {
        run_variant(variant, a, x, y, 0, a.nrows());
        return;
    }
    let shared = SharedSlice::new(y);
    pool.run(&|t| {
        let r = ranges[t].clone();
        // SAFETY: disjoint ranges per thread, x read-only.
        let yt = unsafe { shared.slice_mut(r.clone()) };
        run_variant_into(variant, a, x, yt, r.start, r.end);
    });
}

/// Compares the three ABMC blocking strategies on `a`'s row-structure
/// graph by cut-edge count and returns the winner plus every candidate's
/// count. A cut edge is an adjacency between rows in different blocks —
/// exactly the structure that becomes a cross-block dependency (and a
/// point-to-point flag wait) after coloring, so fewer cut edges means
/// fewer waits and better block-local reuse. Ties prefer the cheaper
/// build, in order contiguous → aggregated → multilevel. Each candidate
/// builds the same `Blocking` that [`fbmpk_reorder::Abmc::new`] would,
/// so the counts describe the partitions actually executed.
pub fn select_blocking_strategy(
    a: &Csr,
    nblocks: usize,
) -> (BlockingStrategy, Vec<(BlockingStrategy, usize)>) {
    use fbmpk_reorder::blocking::{aggregated_blocks, block_size_for_count, contiguous_blocks};
    use fbmpk_reorder::{cut_edges, multilevel_blocks};
    let n = a.nrows();
    if n == 0 || nblocks <= 1 {
        // One block (or nothing) cuts no edges anywhere; take the trivial
        // partition without building graphs.
        return (BlockingStrategy::Contiguous, Vec::new());
    }
    let g = Graph::from_matrix(a);
    let cuts = vec![
        (BlockingStrategy::Contiguous, cut_edges(&g, &contiguous_blocks(n, nblocks))),
        (
            BlockingStrategy::Aggregated,
            cut_edges(&g, &aggregated_blocks(&g, block_size_for_count(n, nblocks))),
        ),
        (BlockingStrategy::Multilevel, cut_edges(&g, &multilevel_blocks(&g, nblocks))),
    ];
    let best = cuts.iter().min_by_key(|&&(_, c)| c).expect("three candidates").0;
    (best, cuts)
}

/// Structural + numerical fingerprint: FNV-1a over dimensions and the
/// complete `row_ptr`, `col_idx`, and value-bit streams. Any entry change
/// — structural or numerical — changes the fingerprint, so a cached plan
/// can never be served for a modified matrix. Cost is one O(nnz) pass,
/// comparable to a single SpMV and paid once per cache lookup.
pub fn fingerprint(a: &Csr) -> u64 {
    let mut h = crate::fingerprint::Fnv64::new();
    h.write_usize(a.nrows());
    h.write_usize(a.ncols());
    h.write_usize(a.nnz());
    for &p in a.row_ptr() {
        h.write_usize(p);
    }
    for &c in a.col_idx() {
        h.write_u64(c as u64);
    }
    for &v in a.values() {
        h.write_f64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::spmv::spmv;
    use fbmpk_sparse::vecops::rel_err_inf;

    fn grid(n: usize) -> Csr {
        fbmpk_gen::poisson::grid2d_5pt(n, n)
    }

    fn skewed(seed: u64) -> Csr {
        fbmpk_gen::rmat::rmat(fbmpk_gen::rmat::RmatParams {
            scale: 8,
            edge_factor: 8,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn tuned_spmv_matches_scalar_all_variants() {
        let a = grid(12);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut want = vec![0.0; n];
        spmv(&a, &x, &mut want);
        for variant in [
            KernelVariant::CsrScalar,
            KernelVariant::CsrUnrolled4,
            KernelVariant::CsrRowSplit { threshold: ROWSPLIT_THRESHOLD },
        ] {
            let mut got = vec![0.0; n];
            run_variant(variant, &a, &x, &mut got, 0, n);
            assert!(rel_err_inf(&got, &want) < 1e-12, "{variant}");
        }
    }

    #[test]
    fn tuned_plan_serial_and_parallel_match_reference() {
        for a in [grid(10), skewed(3)] {
            let n = a.nrows();
            let x: Vec<f64> = (0..n).map(|i| 1.0 - 0.01 * (i % 31) as f64).collect();
            let mut want = vec![0.0; n];
            spmv(&a, &x, &mut want);
            for nthreads in [1, 2, 4] {
                let plan = TunedPlan::new(
                    &a,
                    TuneOptions { nthreads, probe: true, probe_reps: 1, ..Default::default() },
                );
                let mut got = vec![0.0; n];
                plan.spmv(&x, &mut got);
                assert!(
                    rel_err_inf(&got, &want) < 1e-12,
                    "nthreads={nthreads} variant={}",
                    plan.variant()
                );
            }
        }
    }

    #[test]
    fn power_and_sspmv_match_untuned() {
        let a = grid(8);
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let baseline = crate::StandardMpk::new(&a, 1).unwrap();
        let plan = TunedPlan::new(
            &a,
            TuneOptions { nthreads: 2, probe: false, probe_reps: 1, ..Default::default() },
        );
        for k in [1, 2, 5] {
            let want = baseline.power(&x0, k);
            let got = plan.power(&x0, k);
            assert!(rel_err_inf(&got, &want) < 1e-12, "k={k}");
        }
        let coeffs = [0.5, -1.0, 0.0, 2.0];
        let want = baseline.sspmv(&coeffs, &x0);
        let got = plan.sspmv(&coeffs, &x0);
        assert!(rel_err_inf(&got, &want) < 1e-12);
    }

    #[test]
    fn cost_model_prefers_rowsplit_on_skew() {
        let f = MatrixFeatures {
            n: 1000,
            nnz: 16_000,
            mean_row_nnz: 16.0,
            var_row_nnz: 400.0,
            row_cv: 1.25,
            max_row_nnz: 300,
            bandwidth: 900,
            symmetric: false,
        };
        let c = cost_model_candidates(&f, 4, SimdLevel::Scalar);
        assert_eq!(c[0], KernelVariant::CsrRowSplit { threshold: ROWSPLIT_THRESHOLD });
        assert_eq!(*c.last().unwrap(), KernelVariant::CsrScalar);
        // SELL never offered in parallel mode.
        assert!(!c.iter().any(|v| matches!(v, KernelVariant::SellCs { .. })));
    }

    #[test]
    fn cost_model_offers_sell_for_regular_serial() {
        let f = MatrixFeatures {
            n: 4096,
            nnz: 20_480,
            mean_row_nnz: 5.0,
            var_row_nnz: 0.25,
            row_cv: 0.1,
            max_row_nnz: 5,
            bandwidth: 64,
            symmetric: true,
        };
        let c = cost_model_candidates(&f, 1, SimdLevel::Scalar);
        assert!(matches!(c[0], KernelVariant::SellCs { .. }));
    }

    #[test]
    fn cost_model_offers_simd_only_when_accelerated() {
        let f = MatrixFeatures {
            n: 1000,
            nnz: 8_000,
            mean_row_nnz: 8.0,
            var_row_nnz: 1.0,
            row_cv: 0.125,
            max_row_nnz: 10,
            bandwidth: 100,
            symmetric: true,
        };
        let with = cost_model_candidates(&f, 4, SimdLevel::Avx2);
        assert!(
            with.contains(&KernelVariant::CsrSimd { width: 4 }),
            "accelerated level must offer the SIMD variant: {with:?}"
        );
        let simd_pos =
            with.iter().position(|v| matches!(v, KernelVariant::CsrSimd { .. })).unwrap();
        let unrolled_pos = with.iter().position(|v| *v == KernelVariant::CsrUnrolled4).unwrap();
        assert!(simd_pos < unrolled_pos, "SIMD ranks above unrolled when available");
        let without = cost_model_candidates(&f, 4, SimdLevel::Scalar);
        assert!(
            !without.iter().any(|v| matches!(v, KernelVariant::CsrSimd { .. })),
            "scalar level must not offer the SIMD variant"
        );
        // Short rows never offer SIMD even on accelerated hardware.
        let short = MatrixFeatures { mean_row_nnz: 2.0, ..f };
        let c = cost_model_candidates(&short, 4, SimdLevel::Avx2);
        assert!(!c.iter().any(|v| matches!(v, KernelVariant::CsrSimd { .. })));
    }

    #[test]
    fn simd_variant_matches_scalar_reference() {
        for a in [grid(12), skewed(7)] {
            let n = a.nrows();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
            let mut want = vec![0.0; n];
            spmv(&a, &x, &mut want);
            let width = fbmpk_sparse::simd::detect().width();
            let mut got = vec![0.0; n];
            run_variant(KernelVariant::CsrSimd { width }, &a, &x, &mut got, 0, n);
            assert!(rel_err_inf(&got, &want) < 1e-12);
            // The sub-slice executor form used by the parallel path.
            let mut got2 = vec![0.0; n / 2];
            run_variant_into(KernelVariant::CsrSimd { width }, &a, &x, &mut got2, 0, n / 2);
            assert_eq!(&got[..n / 2], &got2[..], "full and sub-slice forms must agree");
        }
    }

    #[test]
    fn tuned_plan_with_simd_variant_runs_parallel() {
        let a = grid(16);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 13) as f64 * 0.05).collect();
        let mut want = vec![0.0; n];
        spmv(&a, &x, &mut want);
        for nthreads in [1, 3] {
            let mut plan = TunedPlan::new(
                &a,
                TuneOptions { nthreads, probe: false, probe_reps: 1, ..Default::default() },
            );
            // Force the SIMD variant regardless of what the model picked so
            // the executor path is covered on every host.
            plan.variant = KernelVariant::CsrSimd { width: plan.simd_level().width() };
            plan.sell = None;
            let mut got = vec![0.0; n];
            plan.spmv(&x, &mut got);
            assert!(rel_err_inf(&got, &want) < 1e-12, "nthreads={nthreads}");
        }
    }

    #[test]
    fn deep_power_uses_level_blocking_and_matches_reference() {
        // Elongated grid: many narrow BFS shells, so the auto band under
        // the default LLC easily covers >= 2 powers.
        let a = fbmpk_gen::poisson::grid2d_5pt(4, 200);
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let baseline = crate::StandardMpk::new(&a, 1).unwrap();
        for nthreads in [1, 2] {
            let plan = TunedPlan::new(
                &a,
                TuneOptions { nthreads, probe: false, probe_reps: 1, ..Default::default() },
            );
            assert!(
                plan.level_block_for(6).is_some(),
                "narrow-shell matrix at k=6 must engage level blocking"
            );
            for k in [4, 5, 6, 9] {
                let want = baseline.power(&x0, k);
                let got = plan.power(&x0, k);
                assert!(rel_err_inf(&got, &want) < 1e-11, "nthreads={nthreads} k={k}");
            }
        }
    }

    #[test]
    fn shallow_power_skips_level_blocking() {
        let a = grid(8);
        let plan = TunedPlan::new(
            &a,
            TuneOptions { nthreads: 1, probe: false, probe_reps: 1, ..Default::default() },
        );
        // k < 4 never consults the blocking plan; the lazy cell stays empty.
        let _ = plan.power(&vec![1.0; plan.n()], 3);
        assert!(plan.levelblock.get().is_none(), "k=3 must not build the BFS plan");
    }

    #[test]
    fn strategy_selection_compares_all_three_by_cut_edges() {
        let a = skewed(11);
        let (best, cuts) = select_blocking_strategy(&a, 32);
        assert_eq!(cuts.len(), 3, "all three strategies evaluated");
        let best_cut = cuts.iter().find(|(s, _)| *s == best).unwrap().1;
        assert!(cuts.iter().all(|&(_, c)| best_cut <= c), "winner has the minimum cut: {cuts:?}");
        // Deterministic: same matrix, same answer.
        assert_eq!(select_blocking_strategy(&a, 32), (best, cuts));
        // Degenerate sizes take the trivial partition without graph work.
        assert_eq!(select_blocking_strategy(&a, 1).0, BlockingStrategy::Contiguous);
        assert_eq!(select_blocking_strategy(&Csr::zero(0, 0), 4).1, Vec::new());
    }

    #[test]
    fn tuned_plan_resolves_strategy_lazily_and_derives_plans() {
        let a = skewed(4);
        let plan = TunedPlan::new(
            &a,
            TuneOptions { nthreads: 2, probe: false, probe_reps: 1, ..Default::default() },
        );
        assert!(plan.blocking_cut_edges().is_none(), "no comparison before first ask");
        let chosen = plan.blocking_strategy(32);
        let cuts = plan.blocking_cut_edges().expect("comparison resolved");
        assert_eq!(cuts.len(), 3);
        assert_eq!(plan.blocking_strategy(32), chosen, "cached choice is stable");
        // The derived FBMPK plan runs and matches the reference.
        let fb = plan.fbmpk_plan_auto(32).unwrap();
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i * 3 % 13) as f64) - 6.0).collect();
        let want = crate::StandardMpk::new(&a, 1).unwrap().power(&x0, 4);
        assert!(rel_err_inf(&fb.power(&x0, 4), &want) < 1e-11);
        // An explicit override bypasses the comparison entirely.
        let forced = TunedPlan::new(
            &a,
            TuneOptions {
                nthreads: 2,
                probe: false,
                probe_reps: 1,
                abmc_blocking: Some(BlockingStrategy::Multilevel),
                ..Default::default()
            },
        );
        assert_eq!(forced.blocking_strategy(32), BlockingStrategy::Multilevel);
        assert!(forced.blocking_cut_edges().is_none());
    }

    #[test]
    fn cache_distinguishes_partitioner_tag() {
        let a = grid(7);
        let base = TuneOptions { nthreads: 1, probe: false, probe_reps: 1, ..Default::default() };
        let auto = TunedPlan::cached(&a, base);
        let forced = TunedPlan::cached(
            &a,
            TuneOptions { abmc_blocking: Some(BlockingStrategy::Multilevel), ..base },
        );
        assert!(!Arc::ptr_eq(&auto, &forced), "override must not share the auto cache slot");
    }

    #[test]
    fn fingerprint_distinguishes_matrices() {
        let a = grid(8);
        let b = grid(9);
        assert_eq!(fingerprint(&a), fingerprint(&a));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // A values-only change must also be detected.
        let mut dense = a.to_dense();
        dense[1][0] += 0.5;
        let refs: Vec<&[f64]> = dense.iter().map(|r| r.as_slice()).collect();
        let c = Csr::from_dense(&refs);
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn cache_returns_same_plan() {
        let a = grid(7);
        let opts = TuneOptions { nthreads: 1, probe: false, probe_reps: 1, ..Default::default() };
        let p1 = TunedPlan::cached(&a, opts);
        let p2 = TunedPlan::cached(&a, opts);
        assert!(Arc::ptr_eq(&p1, &p2), "second lookup must hit the cache");
        // A different thread count is a different plan.
        let p3 = TunedPlan::cached(
            &a,
            TuneOptions { nthreads: 2, probe: false, probe_reps: 1, ..Default::default() },
        );
        assert!(!Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn report_has_probe_data() {
        let a = grid(10);
        let plan = TunedPlan::new(
            &a,
            TuneOptions { nthreads: 1, probe: true, probe_reps: 2, ..Default::default() },
        );
        let r = plan.report();
        assert!(!r.probed.is_empty());
        assert!(r.probed.iter().any(|(v, _)| *v == KernelVariant::CsrScalar));
        assert!(r.scalar_seconds > 0.0);
        assert!(r.chosen_seconds > 0.0);
        assert!(r.chosen_seconds <= r.scalar_seconds, "probe must pick the fastest");
        assert!(r.probed_speedup() >= 1.0);
    }

    #[test]
    fn empty_matrix_tunes_without_panic() {
        let a = Csr::zero(5, 5);
        let plan = TunedPlan::new(&a, TuneOptions::default());
        let mut y = vec![1.0; 5];
        plan.spmv(&[1.0; 5], &mut y);
        assert_eq!(y, vec![0.0; 5]);
    }
}
