//! Analytic memory-access model (paper §III-B and §V-B/V-C).
//!
//! The paper's headline claim is that FBMPK reads the matrix
//! `⌈(k+1)/2⌉` times where the standard MPK reads it `k` times. This
//! module turns that argument into checkable numbers: element counts and
//! byte volumes per kernel invocation, including the vector traffic that
//! §V-C identifies as the reason sparse matrices (G3_circuit) benefit less.

/// Byte sizes used throughout (CSR with 4-byte column indices, 8-byte
/// values and row pointers — Table IV's accounting).
pub const VAL_BYTES: usize = 8;
/// Size of one column index.
pub const IDX_BYTES: usize = 4;
/// Size of one row-pointer entry.
pub const PTR_BYTES: usize = 8;

/// Structural inputs to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixShape {
    /// Dimension `n`.
    pub n: usize,
    /// Total stored entries of `A`.
    pub nnz: usize,
    /// Entries in the strict lower triangle.
    pub nnz_lower: usize,
    /// Entries in the strict upper triangle.
    pub nnz_upper: usize,
}

impl MatrixShape {
    /// Extracts the shape from a matrix.
    pub fn of(a: &fbmpk_sparse::Csr) -> Self {
        let mut nnz_lower = 0;
        let mut nnz_upper = 0;
        for (r, c, _) in a.iter() {
            match c.cmp(&r) {
                std::cmp::Ordering::Less => nnz_lower += 1,
                std::cmp::Ordering::Greater => nnz_upper += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        MatrixShape { n: a.nrows(), nnz: a.nnz(), nnz_lower, nnz_upper }
    }

    /// Bytes of one full read of `A` in CSR (values + column indices +
    /// row pointers).
    pub fn csr_read_bytes(&self) -> usize {
        self.nnz * (VAL_BYTES + IDX_BYTES) + (self.n + 1) * PTR_BYTES
    }

    /// Bytes of one full read of the split representation's `L` (or `U`,
    /// with the other triangle count).
    fn triangle_read_bytes(&self, tri_nnz: usize) -> usize {
        tri_nnz * (VAL_BYTES + IDX_BYTES) + (self.n + 1) * PTR_BYTES
    }
}

/// Predicted matrix-traffic (bytes read from the matrix arrays, assuming no
/// cache reuse across sweeps — the streaming regime the paper measures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficModel {
    /// Standard MPK: `k` reads of `A` plus per-invocation vector traffic.
    pub standard_matrix_bytes: usize,
    /// FBMPK: head/tail + ⌊k/2⌋ rounds over `L` and `U`, plus diagonal.
    pub fbmpk_matrix_bytes: usize,
    /// Standard vector traffic: read `x`, write `y` per invocation.
    pub standard_vector_bytes: usize,
    /// FBMPK vector traffic: the merged sweeps read both live iterates and
    /// write two streams per round (xy + tmp).
    pub fbmpk_vector_bytes: usize,
}

impl TrafficModel {
    /// Evaluates the model for power `k >= 1`.
    pub fn evaluate(shape: &MatrixShape, k: usize) -> Self {
        assert!(k >= 1);
        let (l_reads, u_reads) = crate::kernel::triangle_reads(k);
        let rounds = k / 2;
        let n = shape.n;
        // FBMPK matrix traffic: triangle sweeps + the diagonal vector once
        // per stage that touches it (forward + tail).
        let diag_stages = rounds + (k % 2);
        let fbmpk_matrix_bytes = l_reads * shape.triangle_read_bytes(shape.nnz_lower)
            + u_reads * shape.triangle_read_bytes(shape.nnz_upper)
            + diag_stages * n * VAL_BYTES;
        let standard_matrix_bytes = k * shape.csr_read_bytes();
        // Vector traffic (streaming lower bound, ignoring random-access
        // amplification): standard reads x and writes y each invocation;
        // FBMPK reads both interleaved iterates and tmp, writes one iterate
        // stream and tmp, per stage.
        let standard_vector_bytes = k * 2 * n * VAL_BYTES;
        let stages = 1 + 2 * rounds + (k % 2); // head + sweeps + tail
        let fbmpk_vector_bytes = stages * 3 * n * VAL_BYTES;
        TrafficModel {
            standard_matrix_bytes,
            fbmpk_matrix_bytes,
            standard_vector_bytes,
            fbmpk_vector_bytes,
        }
    }

    /// Matrix-only traffic ratio FBMPK / standard — the paper's idealized
    /// `(k+1) / 2k`.
    pub fn matrix_ratio(&self) -> f64 {
        self.fbmpk_matrix_bytes as f64 / self.standard_matrix_bytes as f64
    }

    /// Total traffic ratio (matrix + vectors) — what a DRAM counter like
    /// LIKWID actually observes (paper Fig. 9 reports this being above the
    /// ideal, most visibly for very sparse matrices).
    pub fn total_ratio(&self) -> f64 {
        (self.fbmpk_matrix_bytes + self.fbmpk_vector_bytes) as f64
            / (self.standard_matrix_bytes + self.standard_vector_bytes) as f64
    }
}

/// The paper's idealized access-count ratio `(k+1) / 2k` (§V-C: 67%, 58%,
/// 56% for k = 3, 6, 9).
pub fn ideal_ratio(k: usize) -> f64 {
    assert!(k >= 1);
    (k + 1) as f64 / (2 * k) as f64
}

/// Structural inputs of one contiguous row block — the per-block slice of
/// [`MatrixShape`] the attribution ledgers decompose §III-B over.
///
/// Row-pointer bytes are apportioned one 8-byte entry per row, with the
/// single extra `(n+1)`-th entry carried by the block whose `ptr_tail`
/// flag is set (the last one), so per-block sums reproduce the
/// whole-matrix `8(n+1)` term exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShape {
    /// Rows in the block.
    pub rows: usize,
    /// Stored entries of the strict lower triangle in these rows.
    pub nnz_lower: usize,
    /// Stored entries of the strict upper triangle in these rows.
    pub nnz_upper: usize,
    /// Whether this block carries the extra row-pointer entry.
    pub ptr_tail: bool,
}

impl BlockShape {
    /// Bytes of one traversal of this block's slice of `L` **plus** its
    /// share of the diagonal (the diagonal rides along with every forward
    /// and tail sweep, exactly as in
    /// [`TrafficModel::evaluate`]).
    pub fn lower_stage_bytes(&self) -> u64 {
        (self.nnz_lower * (VAL_BYTES + IDX_BYTES)
            + self.rows * PTR_BYTES
            + usize::from(self.ptr_tail) * PTR_BYTES
            + self.rows * VAL_BYTES) as u64
    }

    /// Bytes of one traversal of this block's slice of `U` (head and
    /// backward sweeps touch no diagonal).
    pub fn upper_stage_bytes(&self) -> u64 {
        (self.nnz_upper * (VAL_BYTES + IDX_BYTES)
            + self.rows * PTR_BYTES
            + usize::from(self.ptr_tail) * PTR_BYTES) as u64
    }
}

/// Slices a triangular split into per-block shapes along the schedule's
/// `block_row_start` boundaries (`block_row_start[b]..block_row_start[b+1]`
/// is block `b`; the vector must start at 0, end at `n`, and be monotone).
///
/// # Panics
/// Panics when `block_row_start` is not a monotone cover of `0..n`.
pub fn block_shapes(
    split: &fbmpk_sparse::TriangularSplit,
    block_row_start: &[usize],
) -> Vec<BlockShape> {
    let n = split.n();
    assert!(block_row_start.len() >= 2, "need at least one block");
    assert_eq!(*block_row_start.first().expect("nonempty"), 0);
    assert_eq!(*block_row_start.last().expect("nonempty"), n);
    assert!(block_row_start.windows(2).all(|w| w[0] <= w[1]), "block starts must be monotone");
    let l_ptr = split.lower.row_ptr();
    let u_ptr = split.upper.row_ptr();
    let nblocks = block_row_start.len() - 1;
    (0..nblocks)
        .map(|b| {
            let (r0, r1) = (block_row_start[b], block_row_start[b + 1]);
            BlockShape {
                rows: r1 - r0,
                nnz_lower: l_ptr[r1] - l_ptr[r0],
                nnz_upper: u_ptr[r1] - u_ptr[r0],
                ptr_tail: b == nblocks - 1,
            }
        })
        .collect()
}

/// Modeled FBMPK matrix bytes per (power, block): `out[p - 1][b]` is the
/// §III-B streaming cost block `b` contributes while the pipeline
/// completes power `p`. The head read of `U` is billed to power 1 (it is
/// power 1's preparatory traversal); forward sweeps of round `p` bill to
/// power `2p+1`, backward sweeps to `2p+2`, and the odd-`k` tail to `k`.
/// Summing over every cell reproduces the whole-matrix
/// `TrafficModel::fbmpk_matrix_bytes` (and `FbmpkPlan::modeled_matrix_bytes`)
/// exactly — the modeled ledger's conservation invariant.
pub fn fbmpk_block_power_matrix_bytes(blocks: &[BlockShape], k: usize) -> Vec<Vec<u64>> {
    assert!(k >= 1);
    let nblocks = blocks.len();
    let mut out = vec![vec![0u64; nblocks]; k];
    let add_lower = |power: usize, out: &mut Vec<Vec<u64>>| {
        for (b, s) in blocks.iter().enumerate() {
            out[power - 1][b] += s.lower_stage_bytes();
        }
    };
    let add_upper = |power: usize, out: &mut Vec<Vec<u64>>| {
        for (b, s) in blocks.iter().enumerate() {
            out[power - 1][b] += s.upper_stage_bytes();
        }
    };
    // Head: one U traversal, billed to power 1.
    add_upper(1, &mut out);
    for p in 0..k / 2 {
        add_lower(2 * p + 1, &mut out); // forward completes x_{2p+1}
        add_upper(2 * p + 2, &mut out); // backward completes x_{2p+2}
    }
    if k % 2 == 1 {
        add_lower(k, &mut out); // tail completes x_k
    }
    out
}

/// Modeled FBMPK matrix bytes per block, aggregated over every power —
/// the column sums of [`fbmpk_block_power_matrix_bytes`]. Sums to the
/// whole-matrix model exactly.
pub fn fbmpk_block_matrix_bytes(blocks: &[BlockShape], k: usize) -> Vec<u64> {
    let per_power = fbmpk_block_power_matrix_bytes(blocks, k);
    let mut out = vec![0u64; blocks.len()];
    for row in &per_power {
        for (acc, v) in out.iter_mut().zip(row) {
            *acc += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::Csr;

    fn shape_of_sample() -> MatrixShape {
        let a = Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 3.0, 3.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[2.0, 0.0, 1.0, 6.0],
        ]);
        MatrixShape::of(&a)
    }

    #[test]
    fn shape_counts_triangles() {
        let s = shape_of_sample();
        assert_eq!(s.n, 4);
        assert_eq!(s.nnz, 12);
        assert_eq!(s.nnz_lower, 4);
        assert_eq!(s.nnz_upper, 4);
    }

    #[test]
    fn ideal_ratio_matches_paper_section_v_c() {
        assert!((ideal_ratio(3) - 0.6667).abs() < 1e-3); // paper: 67%
        assert!((ideal_ratio(6) - 0.5833).abs() < 1e-3); // paper: 58%
        assert!((ideal_ratio(9) - 0.5556).abs() < 1e-3); // paper: 56%
    }

    #[test]
    fn model_matrix_ratio_approaches_ideal_for_dense_rows() {
        // For a matrix with many nnz per row the row_ptr/diag overheads
        // vanish and the model ratio converges to (k+1)/2k.
        let shape = MatrixShape { n: 1000, nnz: 100_000, nnz_lower: 49_500, nnz_upper: 49_500 };
        for k in [3usize, 6, 9] {
            let m = TrafficModel::evaluate(&shape, k);
            let ratio = m.matrix_ratio();
            assert!((ratio - ideal_ratio(k)).abs() < 0.05, "k={k}: {ratio} vs {}", ideal_ratio(k));
        }
    }

    #[test]
    fn sparser_matrices_have_higher_total_ratio() {
        // §V-C: vector traffic dominates for very sparse rows, pushing the
        // measured ratio toward 1 (G3_circuit: 77% at k=9).
        let dense = MatrixShape { n: 1000, nnz: 74_000, nnz_lower: 36_500, nnz_upper: 36_500 };
        let sparse = MatrixShape { n: 1000, nnz: 4_800, nnz_lower: 1_900, nnz_upper: 1_900 };
        let k = 9;
        let rd = TrafficModel::evaluate(&dense, k).total_ratio();
        let rs = TrafficModel::evaluate(&sparse, k).total_ratio();
        assert!(rs > rd, "sparse {rs} should exceed dense {rd}");
        assert!(rd > ideal_ratio(k), "total ratio must sit above the matrix-only ideal");
    }

    #[test]
    fn block_bytes_sum_to_whole_matrix_model_exactly() {
        // Conservation invariant of the modeled ledger: for any blocking
        // and any k, per-(power, block) bytes sum to the §III-B
        // whole-matrix figure exactly (no rounding slack).
        let a = fbmpk_gen::poisson::grid2d_5pt(9, 9); // n = 81
        let split = fbmpk_sparse::TriangularSplit::split(&a).expect("square");
        let shape = MatrixShape::of(&a);
        let n = split.n();
        for starts in [vec![0, n], vec![0, 10, 11, 40, n], vec![0, 1, 2, 3, n]] {
            let blocks = block_shapes(&split, &starts);
            for k in 1..=9 {
                let whole = TrafficModel::evaluate(&shape, k).fbmpk_matrix_bytes as u64;
                let per_power = fbmpk_block_power_matrix_bytes(&blocks, k);
                assert_eq!(per_power.len(), k);
                let cell_sum: u64 = per_power.iter().flatten().sum();
                assert_eq!(cell_sum, whole, "starts={starts:?} k={k}");
                let per_block_sum: u64 = fbmpk_block_matrix_bytes(&blocks, k).iter().sum();
                assert_eq!(per_block_sum, whole, "starts={starts:?} k={k}");
            }
        }
    }

    #[test]
    fn traffic_monotone_in_k() {
        let s = shape_of_sample();
        let mut prev = 0;
        for k in 1..=9 {
            let m = TrafficModel::evaluate(&s, k);
            assert!(m.fbmpk_matrix_bytes > prev);
            prev = m.fbmpk_matrix_bytes;
            assert!(m.fbmpk_matrix_bytes <= m.standard_matrix_bytes + s.csr_read_bytes());
        }
    }
}
