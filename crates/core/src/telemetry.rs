//! Live-telemetry wiring for plans: the glue between [`FbmpkPlan`]'s
//! runtime state and the `fbmpk-obs` live registry / exposition endpoint.
//!
//! Two collectors feed the endpoint:
//!
//! * [`PlanTelemetry`] — one per live plan, registered as a `Weak` source
//!   so a dropped plan vanishes from scrapes. Exposes sweep throughput
//!   (invocations, modeled §III-B bytes, busy time, derived achieved
//!   GB/s), per-kind/per-color wait time from the span recorder, per-thread
//!   wait fractions, and the barrier-fallback counter.
//! * a process-wide source (registered once) for state that is global by
//!   construction: watchdog arms/fires, fault-injection hits.
//!
//! The endpoint itself starts from [`resolved_metrics_addr`]:
//! `FbmpkOptions::metrics_addr` wins, else the `FBMPK_METRICS_ADDR`
//! environment variable. When either is set, plan construction calls
//! [`ensure_endpoint`], which binds the listener once per process and
//! flips the live gate on; with neither set the whole module costs one
//! relaxed bool per plan build.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use fbmpk_obs::live::{self, FamilySnapshot, LiveSample, LiveSource, MetricKind, SampleValue};
use fbmpk_obs::recorder::SpanKind;
use fbmpk_obs::Recorder;

/// Resolves the exposition-endpoint address: an explicit option wins,
/// then `FBMPK_METRICS_ADDR` (e.g. `127.0.0.1:9184`, port `0` picks a
/// free port). `None` means no endpoint and zero live overhead.
pub fn resolved_metrics_addr(opt: Option<SocketAddr>) -> Option<SocketAddr> {
    opt.or_else(|| std::env::var("FBMPK_METRICS_ADDR").ok().and_then(|v| v.trim().parse().ok()))
}

/// Starts the process-global endpoint (idempotent) and registers the
/// process-wide collector. Returns the bound address; logs and returns
/// `None` on bind failure — an unobservable run beats no run.
pub fn ensure_endpoint(addr: SocketAddr) -> Option<SocketAddr> {
    ensure_process_source();
    match fbmpk_obs::serve::ensure_global(addr) {
        Ok(bound) => Some(bound),
        Err(e) => {
            eprintln!("fbmpk: metrics endpoint on {addr} failed: {e}");
            None
        }
    }
}

/// Accumulating sweep-side stats a plan updates once per kernel
/// invocation (never per row or per color).
#[derive(Debug, Default)]
pub struct SweepStats {
    invocations: AtomicU64,
    modeled_bytes: AtomicU64,
    busy_ns: AtomicU64,
}

impl SweepStats {
    /// Records one finished invocation that streamed `modeled_bytes` of
    /// matrix data over `busy_ns` of wall time.
    pub fn record(&self, modeled_bytes: u64, busy_ns: u64) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.modeled_bytes.fetch_add(modeled_bytes, Ordering::Relaxed);
        self.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
    }

    /// Lifetime effective bandwidth in GB/s (0.0 before the first
    /// invocation).
    pub fn achieved_gbs(&self) -> f64 {
        let ns = self.busy_ns.load(Ordering::Relaxed);
        if ns == 0 {
            return 0.0;
        }
        self.modeled_bytes.load(Ordering::Relaxed) as f64 / ns as f64
    }
}

/// One array's first-touch placement outcome for the
/// `fbmpk_numa_pages` gauge family: array name and `(node, pages)`
/// pairs from `move_pages(2)`.
pub type NumaPlacement = Vec<(String, fbmpk_parallel::numa::PagesPerNode)>;

/// Per-plan scrape-time collector (see the module docs). Held as an
/// `Arc` by the plan and as a `Weak` by the live registry.
pub struct PlanTelemetry {
    /// Monotone plan id distinguishing concurrent plans in labels.
    id: u64,
    nthreads: usize,
    recorder: Option<Arc<Recorder>>,
    fallbacks: Arc<AtomicU64>,
    sweeps: SweepStats,
    /// First-touch placement snapshot taken at plan build (empty when
    /// placement was not queried — single node, no first touch, or
    /// `move_pages` unavailable).
    numa_placement: NumaPlacement,
}

impl PlanTelemetry {
    /// Builds and registers a collector for one plan.
    pub fn register(
        nthreads: usize,
        recorder: Option<Arc<Recorder>>,
        fallbacks: Arc<AtomicU64>,
        numa_placement: NumaPlacement,
    ) -> Arc<PlanTelemetry> {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        let tele = Arc::new(PlanTelemetry {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            nthreads,
            recorder,
            fallbacks,
            sweeps: SweepStats::default(),
            numa_placement,
        });
        let dyn_arc: Arc<dyn LiveSource> = Arc::clone(&tele) as Arc<dyn LiveSource>;
        live::global().register_source(Arc::downgrade(&dyn_arc));
        tele
    }

    /// The sweep-side stats sink.
    pub fn sweeps(&self) -> &SweepStats {
        &self.sweeps
    }

    fn plan_label(&self) -> (String, String) {
        ("plan".to_string(), self.id.to_string())
    }
}

impl LiveSource for PlanTelemetry {
    fn collect(&self) -> Vec<FamilySnapshot> {
        let plan = self.plan_label();
        let mut fams = vec![
            counter_family(
                "fbmpk_sweep_invocations_total",
                "Completed power/krylov/sspmv kernel invocations",
                vec![plan.clone()],
                self.sweeps.invocations.load(Ordering::Relaxed),
            ),
            counter_family(
                "fbmpk_modeled_bytes_total",
                "Modeled matrix bytes streamed (paper \u{2308}(k+1)/2\u{2309} traffic model)",
                vec![plan.clone()],
                self.sweeps.modeled_bytes.load(Ordering::Relaxed),
            ),
            gauge_family(
                "fbmpk_busy_seconds_total",
                "Wall time inside kernel invocations",
                MetricKind::Counter,
                vec![plan.clone()],
                self.sweeps.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
            ),
            gauge_family(
                "fbmpk_achieved_gbs",
                "Lifetime effective bandwidth: modeled bytes over busy time",
                MetricKind::Gauge,
                vec![plan.clone()],
                self.sweeps.achieved_gbs(),
            ),
            counter_family(
                "fbmpk_fallbacks_total",
                "Stalled invocations re-executed under the barrier schedule",
                vec![plan.clone()],
                self.fallbacks.load(Ordering::Relaxed),
            ),
        ];
        if let Some(rec) = &self.recorder {
            fams.push(gauge_family(
                "fbmpk_wait_fraction",
                "Fraction of recorded span time spent in synchronization waits",
                MetricKind::Gauge,
                vec![plan.clone()],
                rec.wait_fraction(),
            ));
            // Per-thread wait fractions for the dashboard's worker rows.
            let mut thread_samples = Vec::with_capacity(self.nthreads);
            for t in 0..self.nthreads.min(rec.nthreads()) {
                let (wait, total) = rec.thread_wait_total_ns(t);
                let frac = if total == 0 { 0.0 } else { wait as f64 / total as f64 };
                thread_samples.push(LiveSample {
                    labels: vec![plan.clone(), ("thread".to_string(), t.to_string())],
                    value: SampleValue::Gauge(frac),
                });
            }
            fams.push(FamilySnapshot {
                name: "fbmpk_thread_wait_fraction".to_string(),
                help: "Per-worker synchronization-wait fraction".to_string(),
                kind: MetricKind::Gauge,
                samples: thread_samples,
            });
            // Per-(kind, color) wait time: the per-color flag/barrier
            // accounting the paper's §V analysis slices on.
            let mut by_color: std::collections::BTreeMap<(&'static str, u32), u64> =
                std::collections::BTreeMap::new();
            for t in 0..rec.nthreads() {
                for s in rec.thread_spans(t) {
                    if !s.kind.is_wait() {
                        continue;
                    }
                    let kind = match s.kind {
                        SpanKind::FlagWait => "flag",
                        SpanKind::BarrierWait => "barrier",
                        _ => "other",
                    };
                    *by_color.entry((kind, s.color)).or_insert(0) += s.duration_ns();
                }
            }
            if !by_color.is_empty() {
                fams.push(FamilySnapshot {
                    name: "fbmpk_wait_seconds_total".to_string(),
                    help: "Synchronization-wait time by kind and color".to_string(),
                    kind: MetricKind::Counter,
                    samples: by_color
                        .into_iter()
                        .map(|((kind, color), ns)| LiveSample {
                            labels: vec![
                                plan.clone(),
                                ("kind".to_string(), kind.to_string()),
                                ("color".to_string(), color_label(color)),
                            ],
                            value: SampleValue::Gauge(ns as f64 / 1e9),
                        })
                        .collect(),
                });
            }
            fams.push(counter_family(
                "fbmpk_spans_dropped_total",
                "Spans dropped by full recorder lanes",
                vec![plan.clone()],
                rec.total_dropped(),
            ));
        }
        if !self.numa_placement.is_empty() {
            let mut samples = Vec::new();
            for (array, placement) in &self.numa_placement {
                for &(node, pages) in placement {
                    samples.push(LiveSample {
                        labels: vec![
                            plan.clone(),
                            ("array".to_string(), array.clone()),
                            ("node".to_string(), node.to_string()),
                        ],
                        value: SampleValue::Gauge(pages as f64),
                    });
                }
            }
            fams.push(FamilySnapshot {
                name: "fbmpk_numa_pages".to_string(),
                help: "First-touch page placement outcome per array and NUMA node \
                       (move_pages query)"
                    .to_string(),
                kind: MetricKind::Gauge,
                samples,
            });
        }
        fams
    }
}

fn color_label(color: u32) -> String {
    if color == fbmpk_obs::Span::NO_ID {
        "none".to_string()
    } else {
        color.to_string()
    }
}

fn counter_family(name: &str, help: &str, labels: Vec<(String, String)>, v: u64) -> FamilySnapshot {
    FamilySnapshot {
        name: name.to_string(),
        help: help.to_string(),
        kind: MetricKind::Counter,
        samples: vec![LiveSample { labels, value: SampleValue::Counter(v) }],
    }
}

fn gauge_family(
    name: &str,
    help: &str,
    kind: MetricKind,
    labels: Vec<(String, String)>,
    v: f64,
) -> FamilySnapshot {
    FamilySnapshot {
        name: name.to_string(),
        help: help.to_string(),
        kind,
        samples: vec![LiveSample { labels, value: SampleValue::Gauge(v) }],
    }
}

/// Watchdog and fault-injection accounting is process-global in
/// `fbmpk-parallel`; one process-wide source mirrors it to the endpoint.
struct ProcessTelemetry;

impl LiveSource for ProcessTelemetry {
    fn collect(&self) -> Vec<FamilySnapshot> {
        let (arms, fires) = fbmpk_parallel::sync::watchdog_stats();
        vec![
            counter_family(
                "fbmpk_watchdog_arms_total",
                "Waits that entered the yielding regime with a deadline armed",
                Vec::new(),
                arms,
            ),
            counter_family(
                "fbmpk_watchdog_fires_total",
                "Stalls declared by the watchdog",
                Vec::new(),
                fires,
            ),
            counter_family(
                "fbmpk_fault_injection_hits_total",
                "Injected faults that triggered at a matching site",
                Vec::new(),
                fbmpk_parallel::fault::injection_hits(),
            ),
        ]
    }
}

/// Registers the process-wide collector exactly once.
pub fn ensure_process_source() {
    static SOURCE: OnceLock<()> = OnceLock::new();
    SOURCE.get_or_init(|| {
        let arc: Arc<dyn LiveSource> = Arc::new(ProcessTelemetry);
        live::global().register_source(Arc::downgrade(&arc));
        // Keep the strong reference alive for process lifetime.
        std::mem::forget(arc);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_stats_derive_bandwidth() {
        let s = SweepStats::default();
        assert_eq!(s.achieved_gbs(), 0.0);
        s.record(2_000_000_000, 1_000_000_000);
        // 2e9 bytes / 1e9 ns = 2 bytes/ns = 2 GB/s.
        assert!((s.achieved_gbs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plan_telemetry_collects_core_families() {
        let fallbacks = Arc::new(AtomicU64::new(3));
        let tele = PlanTelemetry::register(2, None, Arc::clone(&fallbacks), Vec::new());
        tele.sweeps().record(100, 50);
        let fams = tele.collect();
        let names: Vec<&str> = fams.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"fbmpk_sweep_invocations_total"));
        assert!(names.contains(&"fbmpk_achieved_gbs"));
        assert!(names.contains(&"fbmpk_fallbacks_total"));
        assert!(!names.contains(&"fbmpk_numa_pages"), "no placement snapshot was supplied");
        let fb = fams.iter().find(|f| f.name == "fbmpk_fallbacks_total").unwrap();
        assert_eq!(fb.samples[0].value, SampleValue::Counter(3));
    }

    #[test]
    fn numa_placement_surfaces_as_labeled_gauges() {
        let placement: NumaPlacement =
            vec![("xy".to_string(), vec![(0, 12), (1, 13)]), ("lower".to_string(), vec![(0, 7)])];
        let tele = PlanTelemetry::register(1, None, Arc::new(AtomicU64::new(0)), placement);
        let fams = tele.collect();
        let numa = fams.iter().find(|f| f.name == "fbmpk_numa_pages").expect("gauge family");
        assert_eq!(numa.samples.len(), 3);
        let sample = numa
            .samples
            .iter()
            .find(|s| {
                s.labels.iter().any(|(k, v)| k == "array" && v == "xy")
                    && s.labels.iter().any(|(k, v)| k == "node" && v == "1")
            })
            .expect("xy/node1 sample");
        assert_eq!(sample.value, SampleValue::Gauge(13.0));
    }

    #[test]
    fn process_source_reports_watchdog_counters() {
        let fams = ProcessTelemetry.collect();
        let names: Vec<&str> = fams.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"fbmpk_watchdog_arms_total"));
        assert!(names.contains(&"fbmpk_watchdog_fires_total"));
        assert!(names.contains(&"fbmpk_fault_injection_hits_total"));
    }

    #[test]
    fn metrics_addr_resolution_prefers_option() {
        let opt: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        assert_eq!(resolved_metrics_addr(Some(opt)), Some(opt));
    }
}
