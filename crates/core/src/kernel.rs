//! The forward–backward MPK kernel (paper Algorithm 2, generalized).
//!
//! One generic function implements serial and parallel FBMPK for both
//! vector layouts and all three sink modes; monomorphization recovers the
//! specialized loops of the paper's hand-written variants.
//!
//! # Algorithm (computing `x_k = Aᵏ x₀` with `A = L + D + U`)
//!
//! State: the even iterate `x_{2p}` lives in the layout's even slots, the
//! odd iterate `x_{2p+1}` in the odd slots, and `tmp[r]` carries partial
//! sums between stages.
//!
//! * **head** — `tmp = U·x₀` (one read of `U`).
//! * `⌊k/2⌋` **forward/backward rounds**, each advancing two powers while
//!   reading `L` and `U` once each:
//!   * *forward*, rows top-down over `L`:
//!     `x_{2p+1}[r] = tmp[r] + d[r]·x_{2p}[r] + Σ L[r,c]·x_{2p}[c]` and, in
//!     the same pass over the row (the elements of `L` are already in
//!     registers), `tmp[r] = Σ L[r,c]·x_{2p+1}[c] + d[r]·x_{2p+1}[r]` — the
//!     lower triangle only references columns `c < r`, which this sweep has
//!     already finished.
//!   * *backward*, rows bottom-up over `U`: symmetric, producing
//!     `x_{2p+2}` in the even slots and `tmp = U·x_{2p+2}` for the next
//!     round's head state.
//! * **tail** (odd `k`) — `x_k = tmp + d·x_{k-1} + L·x_{k-1}` (one read of
//!   `L`).
//!
//! Matrix reads: `⌈(k+1)/2⌉` instead of the standard `k` (paper §III-B).
//!
//! # Parallel soundness
//!
//! With an ABMC schedule, rows are ordered by color; the forward sweep
//! processes colors ascending and the backward sweep descending, with a
//! pool barrier after every color. A lower-triangle entry `(r, c)` under an
//! ABMC permutation has `color(c) < color(r)` (finished before the barrier)
//! or lies in the same block (processed sequentially by the owning thread)
//! — `fbmpk-reorder` validates exactly this property. All writes
//! (`odd[r]`, `even[r]`, `tmp[r]`, sink emissions) are indexed by rows the
//! executing thread owns.
//!
//! In [`SyncCtx::PointToPoint`] mode the per-color barriers disappear:
//! each block instead waits on the epoch flags of exactly the predecessor
//! blocks in its [`fbmpk_reorder::BlockDeps`] wait list (flow **and**
//! anti dependencies, so the scheme is also safe for in-place SYMGS and
//! for structurally unsymmetric matrices) and flags itself done
//! afterwards. Epochs count sweeps within one invocation — forward of
//! round `p` is `2p+1`, backward `2p+2` — and a same-epoch wait plus
//! program order on the owning thread subsumes all earlier sweeps. Only
//! the head→sweep and sweep→tail hand-offs keep a pool barrier (their
//! flat partition ignores block boundaries).

use crate::layout::XyLayout;
use crate::schedule::{Schedule, SyncCtx};
use crate::sink::Sink;
use fbmpk_obs::recorder::{Span, SpanKind};
use fbmpk_obs::{NoopProbe, Probe};
use fbmpk_parallel::{fault, SharedSlice, ThreadPool};
use fbmpk_sparse::TriangularSplit;

/// Resets the epoch flags of thread `t`'s own blocks (point-to-point mode
/// only). Flags are strictly thread-local to their owning thread — only
/// the owner ever resets or marks a flag — so no cross-thread write races
/// exist; a barrier between the resets and the first wait (the head
/// barrier in FBMPK, an explicit one in SYMGS) publishes them.
pub(crate) fn reset_own_flags(sched: &Schedule, sync: &SyncCtx, t: usize) {
    if let SyncCtx::PointToPoint { flags, .. } = sync {
        for per_color in sched.blocks.iter() {
            for b in per_color[t].clone() {
                flags.reset_one(b);
            }
        }
    }
}

/// One forward sweep (colors ascending, rows top-down) under either sync
/// mode. `epoch` identifies this sweep within the current invocation
/// (1-based); `row` performs one row update.
///
/// Point-to-point mode is deadlock-free because every forward wait
/// targets a strictly earlier color ([`fbmpk_reorder::BlockDeps`]
/// validates this), i.e. a block scheduled earlier in every thread's
/// forward order; both modes execute identical per-row arithmetic in an
/// order consistent with the same dependences, so results are bitwise
/// equal.
pub(crate) fn forward_sweep<F: Fn(usize), P: Probe>(
    sched: &Schedule,
    sync: &SyncCtx,
    pool: &ThreadPool,
    t: usize,
    epoch: u64,
    probe: &P,
    row: F,
) {
    let barrier = pool.barrier();
    let progress = pool.progress();
    // Every instrumented path lives behind `if P::ENABLED`; the `else`
    // branches are the uninstrumented loops verbatim, so the NoopProbe
    // monomorphization is the original kernel.
    match *sync {
        SyncCtx::Barrier => {
            if P::ENABLED {
                for (c, per_thread) in sched.colors.iter().enumerate() {
                    progress.set_site(t, c as u32, None);
                    fault::at_color(t, c);
                    let range = per_thread[t].clone();
                    let rows = range.len() as u32;
                    let t0 = probe.now();
                    for r in range {
                        row(r);
                    }
                    let t1 = probe.now();
                    let (_, snoozes) = barrier.wait_counted();
                    let t2 = probe.now();
                    // SAFETY: `t` is this worker's own lane.
                    unsafe {
                        probe.record(
                            t,
                            span(SpanKind::Forward, c as u32, Span::NO_ID, rows, t0, t1),
                        );
                        probe.record(
                            t,
                            span(SpanKind::BarrierWait, c as u32, Span::NO_ID, snoozes, t1, t2),
                        );
                    }
                }
            } else {
                for (c, per_thread) in sched.colors.iter().enumerate() {
                    progress.set_site(t, c as u32, None);
                    fault::at_color(t, c);
                    for r in per_thread[t].clone() {
                        row(r);
                    }
                    barrier.wait();
                }
            }
        }
        SyncCtx::PointToPoint { deps, flags } => {
            if P::ENABLED {
                for (c, per_color) in sched.blocks.iter().enumerate() {
                    fault::at_color(t, c);
                    for b in per_color[t].clone() {
                        progress.set_site(t, c as u32, Some(b as u32));
                        let t0 = probe.now();
                        let snoozes = flags.wait_all_counted_from(t, deps.fwd(b), epoch);
                        let t1 = probe.now();
                        let block = sched.block_rows(b);
                        let rows = block.len() as u32;
                        for r in block {
                            row(r);
                        }
                        if fault::before_mark(t, b, epoch) {
                            flags.mark(b, epoch);
                        }
                        let t2 = probe.now();
                        // SAFETY: `t` is this worker's own lane.
                        unsafe {
                            probe.record(
                                t,
                                span(SpanKind::FlagWait, c as u32, b as u32, snoozes, t0, t1),
                            );
                            probe.record(
                                t,
                                span(SpanKind::Forward, c as u32, b as u32, rows, t1, t2),
                            );
                        }
                    }
                }
            } else {
                for (c, per_color) in sched.blocks.iter().enumerate() {
                    fault::at_color(t, c);
                    for b in per_color[t].clone() {
                        progress.set_site(t, c as u32, Some(b as u32));
                        flags.wait_all_counted_from(t, deps.fwd(b), epoch);
                        for r in sched.block_rows(b) {
                            row(r);
                        }
                        if fault::before_mark(t, b, epoch) {
                            flags.mark(b, epoch);
                        }
                    }
                }
            }
        }
    }
}

/// Builds a span literal (keeps the instrumentation sites readable).
#[inline(always)]
fn span(kind: SpanKind, color: u32, block: u32, detail: u32, start_ns: u64, end_ns: u64) -> Span {
    Span { kind, color, block, detail, start_ns, end_ns }
}

/// One backward sweep (colors descending, rows bottom-up); mirror of
/// [`forward_sweep`] waiting on the later-color dependency lists.
pub(crate) fn backward_sweep<F: Fn(usize), P: Probe>(
    sched: &Schedule,
    sync: &SyncCtx,
    pool: &ThreadPool,
    t: usize,
    epoch: u64,
    probe: &P,
    row: F,
) {
    let barrier = pool.barrier();
    let progress = pool.progress();
    match *sync {
        SyncCtx::Barrier => {
            if P::ENABLED {
                let ncolors = sched.colors.len();
                for (i, per_thread) in sched.colors.iter().rev().enumerate() {
                    let c = (ncolors - 1 - i) as u32;
                    progress.set_site(t, c, None);
                    fault::at_color(t, c as usize);
                    let range = per_thread[t].clone();
                    let rows = range.len() as u32;
                    let t0 = probe.now();
                    for r in range.rev() {
                        row(r);
                    }
                    let t1 = probe.now();
                    let (_, snoozes) = barrier.wait_counted();
                    let t2 = probe.now();
                    // SAFETY: `t` is this worker's own lane.
                    unsafe {
                        probe.record(t, span(SpanKind::Backward, c, Span::NO_ID, rows, t0, t1));
                        probe.record(
                            t,
                            span(SpanKind::BarrierWait, c, Span::NO_ID, snoozes, t1, t2),
                        );
                    }
                }
            } else {
                let ncolors = sched.colors.len();
                for (i, per_thread) in sched.colors.iter().rev().enumerate() {
                    let c = ncolors - 1 - i;
                    progress.set_site(t, c as u32, None);
                    fault::at_color(t, c);
                    for r in per_thread[t].clone().rev() {
                        row(r);
                    }
                    barrier.wait();
                }
            }
        }
        SyncCtx::PointToPoint { deps, flags } => {
            if P::ENABLED {
                let ncolors = sched.blocks.len();
                for (i, per_color) in sched.blocks.iter().rev().enumerate() {
                    let c = (ncolors - 1 - i) as u32;
                    fault::at_color(t, c as usize);
                    for b in per_color[t].clone().rev() {
                        progress.set_site(t, c, Some(b as u32));
                        let t0 = probe.now();
                        let snoozes = flags.wait_all_counted_from(t, deps.bwd(b), epoch);
                        let t1 = probe.now();
                        let block = sched.block_rows(b);
                        let rows = block.len() as u32;
                        for r in block.rev() {
                            row(r);
                        }
                        if fault::before_mark(t, b, epoch) {
                            flags.mark(b, epoch);
                        }
                        let t2 = probe.now();
                        // SAFETY: `t` is this worker's own lane.
                        unsafe {
                            probe.record(t, span(SpanKind::FlagWait, c, b as u32, snoozes, t0, t1));
                            probe.record(t, span(SpanKind::Backward, c, b as u32, rows, t1, t2));
                        }
                    }
                }
            } else {
                let ncolors = sched.blocks.len();
                for (i, per_color) in sched.blocks.iter().rev().enumerate() {
                    let c = ncolors - 1 - i;
                    fault::at_color(t, c);
                    for b in per_color[t].clone().rev() {
                        progress.set_site(t, c as u32, Some(b as u32));
                        flags.wait_all_counted_from(t, deps.bwd(b), epoch);
                        for r in sched.block_rows(b).rev() {
                            row(r);
                        }
                        if fault::before_mark(t, b, epoch) {
                            flags.mark(b, epoch);
                        }
                    }
                }
            }
        }
    }
}

/// Runs the FBMPK pipeline.
///
/// On entry the layout's **even** slots must hold `x₀`; odd slots may hold
/// anything. On exit:
///
/// * even `k`: the even slots hold `x_k`,
/// * odd `k`: `out` holds `x_k` (even slots hold `x_{k-1}`).
///
/// `tmp` and `out` must have length `n`. The sink observes every entry of
/// every iterate `1..=k`.
///
/// `sync` selects the intra-sweep synchronization: barriers after every
/// color, or per-block point-to-point waits (whose dependency lists and
/// flag table must match this schedule's block structure). Either way the
/// head hands off to the first sweep, and the last sweep to the tail,
/// through a pool barrier: those stages run on the flat partition, which
/// crosses block boundaries.
///
/// # Errors
/// Returns [`crate::FbmpkError::WorkerPanicked`] when a worker closure
/// panics mid-kernel (peers unwind via the pool's poison latch and the
/// pool stays reusable), and [`crate::FbmpkError::Stalled`] when a
/// point-to-point wait exceeds the watchdog deadline attached to `flags`.
///
/// # Panics
/// Panics if `k == 0` or buffer lengths disagree with the schedule.
#[allow(clippy::too_many_arguments)] // the kernel signature mirrors Algorithm 2's inputs
pub fn run_fbmpk<L: XyLayout, S: Sink>(
    pool: &ThreadPool,
    sched: &Schedule,
    split: &TriangularSplit,
    layout: &L,
    tmp: &mut [f64],
    out: &mut [f64],
    k: usize,
    sink: &S,
    sync: &SyncCtx,
) -> crate::Result<()> {
    run_fbmpk_probed(pool, sched, split, layout, tmp, out, k, sink, sync, &NoopProbe)
}

/// [`run_fbmpk`] with an observability probe threaded through every
/// phase. With [`NoopProbe`] (what [`run_fbmpk`] passes) the probe
/// parameters monomorphize away and this *is* the uninstrumented kernel;
/// with [`fbmpk_obs::SpanProbe`] each thread records head/forward/
/// backward/tail compute spans plus barrier-wait and epoch-flag-wait
/// spans into its own recorder lane.
#[allow(clippy::too_many_arguments)] // the kernel signature mirrors Algorithm 2's inputs
pub fn run_fbmpk_probed<L: XyLayout, S: Sink, P: Probe>(
    pool: &ThreadPool,
    sched: &Schedule,
    split: &TriangularSplit,
    layout: &L,
    tmp: &mut [f64],
    out: &mut [f64],
    k: usize,
    sink: &S,
    sync: &SyncCtx,
    probe: &P,
) -> crate::Result<()> {
    assert!(k >= 1, "k must be at least 1 (k = 0 is the identity)");
    let n = split.n();
    assert_eq!(sched.n, n, "schedule dimension mismatch");
    assert_eq!(tmp.len(), n);
    assert_eq!(out.len(), n);
    assert_eq!(pool.nthreads(), sched.nthreads, "pool/schedule thread count mismatch");
    if let SyncCtx::PointToPoint { deps, flags } = sync {
        assert_eq!(deps.nblocks(), sched.nblocks(), "dependency/schedule block count mismatch");
        assert_eq!(flags.len(), sched.nblocks(), "flag/schedule block count mismatch");
    }

    let tmp = SharedSlice::new(tmp);
    let out = SharedSlice::new(out);
    let lower = &split.lower;
    let upper = &split.upper;
    let diag = &split.diag;
    let barrier = pool.barrier();
    let rounds = k / 2;
    let odd_k = k % 2 == 1;

    // With the `simd` feature on and a vector unit detected at runtime, the
    // sweeps gather whole rows through the layout's base pointers using the
    // dispatched kernels of `fbmpk_sparse::simd` (bit-identical to the
    // unrolled scalar loops below by construction). Layouts that keep
    // `vector_bases` at `None` (e.g. access-tracing ones) stay on the
    // accessor path regardless of the feature.
    #[cfg(feature = "simd")]
    let simd_bases: Option<crate::layout::LayoutBases> =
        if fbmpk_sparse::simd::detect().is_accelerated() { layout.vector_bases() } else { None };

    pool.try_run(&|t| {
        let l_ptr = lower.row_ptr();
        let l_col = lower.col_idx();
        let l_val = lower.values();
        let u_ptr = upper.row_ptr();
        let u_col = upper.col_idx();
        let u_val = upper.values();

        reset_own_flags(sched, sync, t);
        let head_rows = sched.flat[t].clone().len() as u32;
        let head_t0 = probe.now();
        // Head: tmp = U * x0 (x0 in even slots, read-only here). The row
        // dot product is 4-way unrolled (independent accumulators keep the
        // FP pipeline full); the < 4 remainder folds into s0 alone so short
        // rows stay bit-identical to the scalar loop.
        for r in sched.flat[t].clone() {
            let (lo, hi) = (u_ptr[r], u_ptr[r + 1]);
            #[cfg(feature = "simd")]
            if let Some(bases) = simd_bases {
                use crate::layout::LayoutBases;
                // SAFETY: even slots are read-only during the head phase
                // (the pointer-kernel contract); thread t owns tmp rows in
                // flat[t]. Seeding lane 0 with 0.0 is the scalar `s0 = 0.0`.
                unsafe {
                    let s = match bases {
                        LayoutBases::Btb(xy) => fbmpk_sparse::simd::btb_even_dot_ptr(
                            &u_col[lo..hi],
                            &u_val[lo..hi],
                            xy.0,
                            0.0,
                        ),
                        LayoutBases::Split { even, .. } => fbmpk_sparse::simd::row_dot_ptr(
                            &u_col[lo..hi],
                            &u_val[lo..hi],
                            even.0,
                            0.0,
                        ),
                    };
                    tmp.set(r, s);
                }
                continue;
            }
            let main = hi - (hi - lo) % 4;
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            let mut j = lo;
            // SAFETY: even slots are read-only during the head phase.
            unsafe {
                while j < main {
                    s0 += u_val[j] * layout.get_even(u_col[j] as usize);
                    s1 += u_val[j + 1] * layout.get_even(u_col[j + 1] as usize);
                    s2 += u_val[j + 2] * layout.get_even(u_col[j + 2] as usize);
                    s3 += u_val[j + 3] * layout.get_even(u_col[j + 3] as usize);
                    j += 4;
                }
                while j < hi {
                    s0 += u_val[j] * layout.get_even(u_col[j] as usize);
                    j += 1;
                }
            }
            // SAFETY: thread t owns rows in flat[t].
            unsafe { tmp.set(r, (s0 + s1) + (s2 + s3)) };
        }
        if P::ENABLED {
            let t1 = probe.now();
            let (_, snoozes) = barrier.wait_counted();
            let t2 = probe.now();
            // SAFETY: `t` is this worker's own lane.
            unsafe {
                probe.record(
                    t,
                    span(SpanKind::Head, Span::NO_ID, Span::NO_ID, head_rows, head_t0, t1),
                );
                probe.record(
                    t,
                    span(SpanKind::BarrierWait, Span::NO_ID, Span::NO_ID, snoozes, t1, t2),
                );
            }
        } else {
            barrier.wait();
        }

        for p in 0..rounds {
            // Forward sweep over L, colors ascending.
            forward_sweep(sched, sync, pool, t, (2 * p + 1) as u64, probe, |r| {
                // SAFETY: tmp[r]/even[r] owned or phase-stable; odd[c] for
                // c in L-row r is finished (earlier color — barrier or
                // flag-waited — or same block processed earlier by this
                // thread). In point-to-point mode the forward wait also
                // covers the anti-dependency: earlier-color readers of
                // this block's odd rows finished their previous backward
                // sweep before marking this epoch.
                unsafe {
                    let d = diag[r];
                    let (lo, hi) = (l_ptr[r], l_ptr[r + 1]);
                    #[cfg(feature = "simd")]
                    if let Some(bases) = simd_bases {
                        use crate::layout::LayoutBases;
                        // Dual dot with the even stream seeded by
                        // tmp[r] + d·x_even[r] — exactly `sum0a`'s scalar
                        // initialization below.
                        let init_even = tmp.get(r) + d * layout.get_even(r);
                        let (sum0, sum1) = match bases {
                            LayoutBases::Btb(xy) => fbmpk_sparse::simd::btb_dual_dot_ptr(
                                &l_col[lo..hi],
                                &l_val[lo..hi],
                                xy.0,
                                init_even,
                                0.0,
                            ),
                            LayoutBases::Split { even, odd } => {
                                fbmpk_sparse::simd::split_dual_dot_ptr(
                                    &l_col[lo..hi],
                                    &l_val[lo..hi],
                                    even.0,
                                    odd.0,
                                    init_even,
                                    0.0,
                                )
                            }
                        };
                        layout.set_odd(r, sum0); // x_{2p+1}[r]
                        sink.emit(2 * p + 1, r, sum0);
                        tmp.set(r, sum1 + d * sum0); // (L+D) x_{2p+1}
                        return;
                    }
                    // Two dot products share one traversal of the L row
                    // (even and odd streams); each is 2-way unrolled —
                    // four independent accumulators total, mirroring the
                    // standalone SpMV's 4-way unroll. The odd remainder
                    // element folds into the `a` accumulators so rows
                    // with < 2 nonzeros stay bit-identical to scalar.
                    let main = hi - (hi - lo) % 2;
                    let mut sum0a = tmp.get(r) + d * layout.get_even(r);
                    let (mut sum0b, mut sum1a, mut sum1b) = (0.0f64, 0.0f64, 0.0f64);
                    let mut j = lo;
                    while j < main {
                        let c0 = l_col[j] as usize;
                        let c1 = l_col[j + 1] as usize;
                        let v0 = l_val[j];
                        let v1 = l_val[j + 1];
                        sum0a += v0 * layout.get_even(c0);
                        sum0b += v1 * layout.get_even(c1);
                        sum1a += v0 * layout.get_odd(c0);
                        sum1b += v1 * layout.get_odd(c1);
                        j += 2;
                    }
                    if j < hi {
                        let c = l_col[j] as usize;
                        let v = l_val[j];
                        sum0a += v * layout.get_even(c);
                        sum1a += v * layout.get_odd(c);
                    }
                    let sum0 = sum0a + sum0b;
                    let sum1 = sum1a + sum1b;
                    layout.set_odd(r, sum0); // x_{2p+1}[r]
                    sink.emit(2 * p + 1, r, sum0);
                    tmp.set(r, sum1 + d * sum0); // (L+D) x_{2p+1}
                }
            });
            // Backward sweep over U, colors descending, rows bottom-up.
            backward_sweep(sched, sync, pool, t, (2 * p + 2) as u64, probe, |r| {
                // SAFETY: even[c] for c in U-row r is already the new
                // iterate (later color or same block, processed first in
                // this bottom-up order); odd slots are read-only here. The
                // point-to-point backward wait also orders this block's
                // even-row overwrites after every later-color reader's
                // forward sweep (the anti-dependency).
                unsafe {
                    let (lo, hi) = (u_ptr[r], u_ptr[r + 1]);
                    #[cfg(feature = "simd")]
                    if let Some(bases) = simd_bases {
                        use crate::layout::LayoutBases;
                        // Mirror of the forward branch with the streams
                        // swapped: the *odd* stream carries tmp[r] (scalar
                        // `sum0a` below), the even stream starts at zero, so
                        // the kernel's (even, odd) return is (sum1, sum0).
                        let (sum1, sum0) = match bases {
                            LayoutBases::Btb(xy) => fbmpk_sparse::simd::btb_dual_dot_ptr(
                                &u_col[lo..hi],
                                &u_val[lo..hi],
                                xy.0,
                                0.0,
                                tmp.get(r),
                            ),
                            LayoutBases::Split { even, odd } => {
                                fbmpk_sparse::simd::split_dual_dot_ptr(
                                    &u_col[lo..hi],
                                    &u_val[lo..hi],
                                    even.0,
                                    odd.0,
                                    0.0,
                                    tmp.get(r),
                                )
                            }
                        };
                        layout.set_even(r, sum0); // x_{2p+2}[r]
                        sink.emit(2 * p + 2, r, sum0);
                        tmp.set(r, sum1); // U x_{2p+2}: next round's head
                        return;
                    }
                    // Mirror of the forward sweep: two 2-way unrolled
                    // dot products over the U row.
                    let main = hi - (hi - lo) % 2;
                    let mut sum0a = tmp.get(r);
                    let (mut sum0b, mut sum1a, mut sum1b) = (0.0f64, 0.0f64, 0.0f64);
                    let mut j = lo;
                    while j < main {
                        let c0 = u_col[j] as usize;
                        let c1 = u_col[j + 1] as usize;
                        let v0 = u_val[j];
                        let v1 = u_val[j + 1];
                        sum0a += v0 * layout.get_odd(c0);
                        sum0b += v1 * layout.get_odd(c1);
                        sum1a += v0 * layout.get_even(c0);
                        sum1b += v1 * layout.get_even(c1);
                        j += 2;
                    }
                    if j < hi {
                        let c = u_col[j] as usize;
                        let v = u_val[j];
                        sum0a += v * layout.get_odd(c);
                        sum1a += v * layout.get_even(c);
                    }
                    let sum0 = sum0a + sum0b;
                    let sum1 = sum1a + sum1b;
                    layout.set_even(r, sum0); // x_{2p+2}[r]
                    sink.emit(2 * p + 2, r, sum0);
                    tmp.set(r, sum1); // U x_{2p+2}: next round's head
                }
            });
        }

        if odd_k {
            // Point-to-point sweeps end without a barrier, but the tail
            // reads tmp/even across the flat partition, so close the last
            // sweep (when there was one) with an explicit barrier; the
            // barrier schedule already ended every color — including the
            // last — with one.
            if rounds > 0 && matches!(sync, SyncCtx::PointToPoint { .. }) {
                if P::ENABLED {
                    let t0 = probe.now();
                    let (_, snoozes) = barrier.wait_counted();
                    let t1 = probe.now();
                    // SAFETY: `t` is this worker's own lane.
                    unsafe {
                        probe.record(
                            t,
                            span(SpanKind::BarrierWait, Span::NO_ID, Span::NO_ID, snoozes, t0, t1),
                        );
                    }
                } else {
                    barrier.wait();
                }
            }
            let tail_t0 = probe.now();
            // Tail: x_k = tmp + D x_{k-1} + L x_{k-1} with x_{k-1} in the
            // even slots and tmp = U x_{k-1} from the last backward sweep
            // (or from the head when k == 1).
            for r in sched.flat[t].clone() {
                // SAFETY: even slots and tmp are stable after the final
                // barrier; out rows in flat[t] are owned by thread t.
                unsafe {
                    let (lo, hi) = (l_ptr[r], l_ptr[r + 1]);
                    #[cfg(feature = "simd")]
                    if let Some(bases) = simd_bases {
                        use crate::layout::LayoutBases;
                        // Lane 0 seeded with tmp[r] + d·x_{k-1}[r] — the
                        // scalar `s0` initialization below.
                        let init = tmp.get(r) + diag[r] * layout.get_even(r);
                        let s = match bases {
                            LayoutBases::Btb(xy) => fbmpk_sparse::simd::btb_even_dot_ptr(
                                &l_col[lo..hi],
                                &l_val[lo..hi],
                                xy.0,
                                init,
                            ),
                            LayoutBases::Split { even, .. } => fbmpk_sparse::simd::row_dot_ptr(
                                &l_col[lo..hi],
                                &l_val[lo..hi],
                                even.0,
                                init,
                            ),
                        };
                        out.set(r, s);
                        sink.emit(k, r, s);
                        continue;
                    }
                    // Single dot product: 4-way unroll as in the head, with
                    // the initial value and remainder folded into s0.
                    let main = hi - (hi - lo) % 4;
                    let mut s0 = tmp.get(r) + diag[r] * layout.get_even(r);
                    let (mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64);
                    let mut j = lo;
                    while j < main {
                        s0 += l_val[j] * layout.get_even(l_col[j] as usize);
                        s1 += l_val[j + 1] * layout.get_even(l_col[j + 1] as usize);
                        s2 += l_val[j + 2] * layout.get_even(l_col[j + 2] as usize);
                        s3 += l_val[j + 3] * layout.get_even(l_col[j + 3] as usize);
                        j += 4;
                    }
                    while j < hi {
                        s0 += l_val[j] * layout.get_even(l_col[j] as usize);
                        j += 1;
                    }
                    let s = (s0 + s1) + (s2 + s3);
                    out.set(r, s);
                    sink.emit(k, r, s);
                }
            }
            if P::ENABLED {
                let t1 = probe.now();
                // SAFETY: `t` is this worker's own lane.
                unsafe {
                    probe.record(
                        t,
                        span(SpanKind::Tail, Span::NO_ID, Span::NO_ID, head_rows, tail_t0, t1),
                    );
                }
            }
        }
    })
    .map_err(crate::FbmpkError::from)
}

/// Counts the matrix-element reads the pipeline performs for a given `k` —
/// the quantity Fig. 3(b) of the paper reasons about. Returns
/// `(lower_reads, upper_reads)` in units of full-triangle traversals.
pub fn triangle_reads(k: usize) -> (usize, usize) {
    assert!(k >= 1);
    let rounds = k / 2;
    if k % 2 == 1 {
        // head(U) + rounds*(L+U) + tail(L)
        (rounds + 1, rounds + 1)
    } else {
        // head(U) + rounds*(L+U)
        (rounds, rounds + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{BtbXy, SplitXy};
    use crate::schedule::Schedule;
    use crate::sink::{AccumSink, CollectSink, NullSink};
    use fbmpk_sparse::spmv::spmv;
    use fbmpk_sparse::Csr;

    fn sample() -> Csr {
        Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 3.0, 3.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[2.0, 0.0, 1.0, 6.0],
        ])
    }

    fn reference_powers(a: &Csr, x0: &[f64], k: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        let mut x = x0.to_vec();
        for _ in 0..k {
            let mut y = vec![0.0; x.len()];
            spmv(a, &x, &mut y);
            out.push(y.clone());
            x = y;
        }
        out
    }

    fn run_serial_btb(a: &Csr, x0: &[f64], k: usize) -> Vec<f64> {
        let n = a.nrows();
        let split = TriangularSplit::split(a).unwrap();
        let sched = Schedule::serial(n);
        let pool = ThreadPool::new(1);
        let mut xy = vec![0.0; 2 * n];
        for (i, &v) in x0.iter().enumerate() {
            xy[2 * i] = v;
        }
        let mut tmp = vec![0.0; n];
        let mut out = vec![0.0; n];
        {
            let layout = BtbXy::new(&mut xy);
            run_fbmpk(
                &pool,
                &sched,
                &split,
                &layout,
                &mut tmp,
                &mut out,
                k,
                &NullSink,
                &SyncCtx::Barrier,
            )
            .unwrap();
        }
        if k % 2 == 1 {
            out
        } else {
            (0..n).map(|i| xy[2 * i]).collect()
        }
    }

    #[test]
    fn matches_standard_for_all_small_k() {
        let a = sample();
        let x0 = [1.0, -2.0, 0.5, 3.0];
        for k in 1..=8 {
            let want = reference_powers(&a, &x0, k).pop().unwrap();
            let got = run_serial_btb(&a, &x0, k);
            for (g, w) in got.iter().zip(&want) {
                let scale = w.abs().max(1.0);
                assert!((g - w).abs() / scale < 1e-12, "k={k}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn split_layout_equals_btb() {
        let a = sample();
        let x0 = [0.3, 1.7, -0.9, 0.2];
        let n = 4;
        let split = TriangularSplit::split(&a).unwrap();
        let sched = Schedule::serial(n);
        let pool = ThreadPool::new(1);
        for k in [1, 2, 3, 4, 5] {
            let btb = run_serial_btb(&a, &x0, k);
            let mut even = x0.to_vec();
            let mut odd = vec![0.0; n];
            let mut tmp = vec![0.0; n];
            let mut out = vec![0.0; n];
            {
                let layout = SplitXy::new(&mut even, &mut odd);
                run_fbmpk(
                    &pool,
                    &sched,
                    &split,
                    &layout,
                    &mut tmp,
                    &mut out,
                    k,
                    &NullSink,
                    &SyncCtx::Barrier,
                )
                .unwrap();
            }
            let got = if k % 2 == 1 { out } else { even };
            for (g, w) in got.iter().zip(&btb) {
                assert_eq!(g, w, "layouts diverge at k={k}");
            }
        }
    }

    #[test]
    fn collect_sink_yields_all_iterates() {
        let a = sample();
        let x0 = [1.0, 1.0, 1.0, 1.0];
        let n = 4;
        let k = 5;
        let split = TriangularSplit::split(&a).unwrap();
        let sched = Schedule::serial(n);
        let pool = ThreadPool::new(1);
        let mut xy = vec![0.0; 2 * n];
        for (i, &v) in x0.iter().enumerate() {
            xy[2 * i] = v;
        }
        let mut tmp = vec![0.0; n];
        let mut out = vec![0.0; n];
        let mut basis = vec![0.0; k * n];
        {
            let layout = BtbXy::new(&mut xy);
            let sink = CollectSink::new(&mut basis, n, k);
            run_fbmpk(
                &pool,
                &sched,
                &split,
                &layout,
                &mut tmp,
                &mut out,
                k,
                &sink,
                &SyncCtx::Barrier,
            )
            .unwrap();
        }
        let want = reference_powers(&a, &x0, k);
        for i in 0..k {
            for r in 0..n {
                let w = want[i][r];
                let g = basis[i * n + r];
                assert!((g - w).abs() / w.abs().max(1.0) < 1e-12, "iterate {i} row {r}");
            }
        }
    }

    #[test]
    fn accum_sink_computes_polynomial() {
        // y = 2 x1 + 0 x2 + 3 x3
        let a = sample();
        let x0 = [0.5, -1.0, 2.0, 1.0];
        let n = 4;
        let k = 3;
        let coeffs = [0.0, 2.0, 0.0, 3.0];
        let split = TriangularSplit::split(&a).unwrap();
        let sched = Schedule::serial(n);
        let pool = ThreadPool::new(1);
        let mut xy = vec![0.0; 2 * n];
        for (i, &v) in x0.iter().enumerate() {
            xy[2 * i] = v;
        }
        let mut tmp = vec![0.0; n];
        let mut out = vec![0.0; n];
        let mut y = vec![0.0; n];
        {
            let layout = BtbXy::new(&mut xy);
            let sink = AccumSink::new(&mut y, &coeffs);
            run_fbmpk(
                &pool,
                &sched,
                &split,
                &layout,
                &mut tmp,
                &mut out,
                k,
                &sink,
                &SyncCtx::Barrier,
            )
            .unwrap();
        }
        let refs = reference_powers(&a, &x0, k);
        for r in 0..n {
            let w = 2.0 * refs[0][r] + 3.0 * refs[2][r];
            assert!((y[r] - w).abs() / w.abs().max(1.0) < 1e-12);
        }
    }

    #[test]
    fn triangle_reads_match_paper_formulas() {
        // Paper §III-B: k even -> U: k/2 + 1, L: k/2;
        //               k odd  -> both: 1 + (k-1)/2.
        for k in 1..=10 {
            let (l, u) = triangle_reads(k);
            if k % 2 == 0 {
                assert_eq!(u, k / 2 + 1, "k={k}");
                assert_eq!(l, k / 2, "k={k}");
            } else {
                assert_eq!(l, 1 + (k - 1) / 2, "k={k}");
                assert_eq!(u, 1 + (k - 1) / 2, "k={k}");
            }
            // Total = k+1 triangle reads ~ (k+1)/2 reads of A, vs the
            // standard method's 2k triangle reads (k reads of A).
            assert_eq!(l + u, k + 1);
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn k_zero_rejected() {
        let a = sample();
        run_serial_btb(&a, &[1.0; 4], 0);
    }

    #[test]
    fn identity_matrix_powers() {
        let a = Csr::identity(3);
        let x0 = [3.0, -1.0, 2.0];
        for k in 1..=4 {
            let got = run_serial_btb(&a, &x0, k);
            assert_eq!(got, x0.to_vec(), "k={k}");
        }
    }

    #[test]
    fn diagonal_matrix_powers() {
        let a = Csr::from_dense(&[&[2.0, 0.0], &[0.0, -3.0]]);
        let got = run_serial_btb(&a, &[1.0, 1.0], 3);
        assert_eq!(got, vec![8.0, -27.0]);
    }

    #[test]
    fn strictly_triangular_matrices() {
        // Pure lower: nilpotent; k >= n gives zero.
        let l = Csr::from_dense(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let got = run_serial_btb(&l, &[1.0, 0.0, 0.0], 2);
        assert_eq!(got, vec![0.0, 0.0, 1.0]);
        let got = run_serial_btb(&l, &[1.0, 0.0, 0.0], 3);
        assert_eq!(got, vec![0.0, 0.0, 0.0]);
        // Pure upper.
        let u = l.transpose();
        let got = run_serial_btb(&u, &[0.0, 0.0, 1.0], 2);
        assert_eq!(got, vec![1.0, 0.0, 0.0]);
    }
}
