//! A common interface over the two MPK implementations.
//!
//! Downstream solvers (power iteration, Chebyshev filters, s-step Krylov)
//! are written against [`MpkEngine`] so any of them can run on the standard
//! baseline or on FBMPK interchangeably — which is also how the benchmark
//! harness drives apples-to-apples comparisons.

use crate::plan::FbmpkPlan;
use crate::standard::StandardMpk;

/// An executor of matrix-power workloads on a fixed square matrix.
pub trait MpkEngine {
    /// Matrix dimension.
    fn n(&self) -> usize;

    /// Computes `Aᵏ x₀`.
    fn power(&self, x0: &[f64], k: usize) -> Vec<f64>;

    /// Computes the iterates `[A x₀, …, Aᵏ x₀]`.
    fn krylov(&self, x0: &[f64], k: usize) -> Vec<Vec<f64>>;

    /// Computes `y = Σ_{i=0..=k} coeffs[i] · Aⁱ x₀`.
    fn sspmv(&self, coeffs: &[f64], x0: &[f64]) -> Vec<f64>;

    /// One SpMV, `y = A x` (the `k = 1` special case).
    fn spmv(&self, x: &[f64]) -> Vec<f64> {
        self.power(x, 1)
    }
}

impl MpkEngine for StandardMpk {
    fn n(&self) -> usize {
        StandardMpk::n(self)
    }
    fn power(&self, x0: &[f64], k: usize) -> Vec<f64> {
        StandardMpk::power(self, x0, k)
    }
    fn krylov(&self, x0: &[f64], k: usize) -> Vec<Vec<f64>> {
        StandardMpk::krylov(self, x0, k)
    }
    fn sspmv(&self, coeffs: &[f64], x0: &[f64]) -> Vec<f64> {
        StandardMpk::sspmv(self, coeffs, x0)
    }
}

impl MpkEngine for FbmpkPlan {
    fn n(&self) -> usize {
        FbmpkPlan::n(self)
    }
    fn power(&self, x0: &[f64], k: usize) -> Vec<f64> {
        FbmpkPlan::power(self, x0, k)
    }
    fn krylov(&self, x0: &[f64], k: usize) -> Vec<Vec<f64>> {
        FbmpkPlan::krylov(self, x0, k)
    }
    fn sspmv(&self, coeffs: &[f64], x0: &[f64]) -> Vec<f64> {
        FbmpkPlan::sspmv(self, coeffs, x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FbmpkOptions;

    #[test]
    fn both_engines_agree_through_the_trait() {
        let a = fbmpk_gen::poisson::grid2d_5pt(5, 5);
        let x0 = vec![1.0; 25];
        let engines: Vec<Box<dyn MpkEngine>> = vec![
            Box::new(StandardMpk::new(&a, 1).unwrap()),
            Box::new(FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap()),
        ];
        let results: Vec<Vec<f64>> = engines.iter().map(|e| e.power(&x0, 4)).collect();
        for (u, v) in results[0].iter().zip(&results[1]) {
            assert!((u - v).abs() < 1e-11);
        }
        let s: Vec<Vec<f64>> = engines.iter().map(|e| e.spmv(&x0)).collect();
        assert_eq!(s[0], s[1]);
    }
}
