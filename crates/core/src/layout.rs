//! Storage layouts for the two live iterate vectors.
//!
//! FBMPK keeps exactly two iterates alive: the current even power (in the
//! paper's Algorithm 2, `xy[2i]`) and the current odd power (`xy[2i+1]`).
//! The paper evaluates two layouts (§III-C, Fig. 10):
//!
//! * **Split** — two independent arrays; the plain "FB" ablation variant,
//! * **Back-to-back (BtB)** — one interleaved array of length `2n`, so the
//!   paired loads `x_even[c]` / `x_odd[c]` in the merged inner loops land on
//!   the same cache line.
//!
//! Both implement [`XyLayout`], so the colored kernel is written once and
//! monomorphized per layout — the ablation compares identical code paths.

use fbmpk_parallel::SharedSlice;

/// A raw `f64` base pointer that may cross thread boundaries.
///
/// Wraps `SharedSlice::base_ptr()` output so the sweep closures (which the
/// thread pool requires to be `Sync`) can capture it. Every dereference must
/// follow the originating [`SharedSlice`]'s phase-disciplined contract; the
/// wrapper only carries the address.
#[derive(Clone, Copy)]
pub struct RawBase(pub *const f64);

// SAFETY: the pointer is only dereferenced inside kernels that uphold the
// SharedSlice contract (row-disjoint writes, phase-separated reads), which
// is exactly the guarantee that makes the SharedSlice itself Sync.
unsafe impl Send for RawBase {}
unsafe impl Sync for RawBase {}

/// Base pointers of a layout's underlying storage, for the whole-row SIMD
/// kernels that cannot go through the per-element accessors.
#[derive(Clone, Copy)]
pub enum LayoutBases {
    /// One interleaved buffer: even at `2i`, odd at `2i+1`.
    Btb(RawBase),
    /// Two independent buffers.
    Split {
        /// Even-iterate buffer base.
        even: RawBase,
        /// Odd-iterate buffer base.
        odd: RawBase,
    },
}

/// Accessors for the even/odd iterate pair, shared across worker threads.
///
/// # Safety
/// All methods inherit the [`SharedSlice`] contract: the colored schedule
/// guarantees that writes are row-disjoint and reads are phase-separated
/// from conflicting writes.
pub trait XyLayout: Sync {
    /// Reads the even-iterate entry at row `i`.
    ///
    /// # Safety
    /// No concurrent writer for row `i` in this phase.
    unsafe fn get_even(&self, i: usize) -> f64;
    /// Reads the odd-iterate entry at row `i`.
    ///
    /// # Safety
    /// No concurrent writer for row `i` in this phase.
    unsafe fn get_odd(&self, i: usize) -> f64;
    /// Writes the even-iterate entry at row `i`.
    ///
    /// # Safety
    /// Caller owns row `i` in this phase.
    unsafe fn set_even(&self, i: usize, v: f64);
    /// Writes the odd-iterate entry at row `i`.
    ///
    /// # Safety
    /// Caller owns row `i` in this phase.
    unsafe fn set_odd(&self, i: usize, v: f64);
    /// Base pointers of the underlying storage, so the SIMD sweep kernels
    /// can gather whole rows instead of calling the per-element accessors.
    /// Reads through them carry the same contract as [`XyLayout::get_even`]
    /// / [`XyLayout::get_odd`].
    ///
    /// Defaults to `None`, which keeps the kernel on the accessor path —
    /// required for layouts whose accessors have side effects (e.g. the
    /// memory-simulator's traced layout, which records every access).
    fn vector_bases(&self) -> Option<LayoutBases> {
        None
    }
}

/// Two independent arrays (the "FB" ablation variant, no BtB).
pub struct SplitXy<'a> {
    even: SharedSlice<'a, f64>,
    odd: SharedSlice<'a, f64>,
}

impl<'a> SplitXy<'a> {
    /// Wraps two length-`n` buffers.
    pub fn new(even: &'a mut [f64], odd: &'a mut [f64]) -> Self {
        assert_eq!(even.len(), odd.len());
        SplitXy { even: SharedSlice::new(even), odd: SharedSlice::new(odd) }
    }
}

impl XyLayout for SplitXy<'_> {
    #[inline]
    unsafe fn get_even(&self, i: usize) -> f64 {
        unsafe { self.even.get(i) }
    }
    #[inline]
    unsafe fn get_odd(&self, i: usize) -> f64 {
        unsafe { self.odd.get(i) }
    }
    #[inline]
    unsafe fn set_even(&self, i: usize, v: f64) {
        unsafe { self.even.set(i, v) }
    }
    #[inline]
    unsafe fn set_odd(&self, i: usize, v: f64) {
        unsafe { self.odd.set(i, v) }
    }
    #[inline]
    fn vector_bases(&self) -> Option<LayoutBases> {
        Some(LayoutBases::Split {
            even: RawBase(self.even.base_ptr()),
            odd: RawBase(self.odd.base_ptr()),
        })
    }
}

/// The paper's back-to-back interleaved array: even iterate at `xy[2i]`,
/// odd at `xy[2i+1]` (§III-C, Fig. 5).
pub struct BtbXy<'a> {
    xy: SharedSlice<'a, f64>,
}

impl<'a> BtbXy<'a> {
    /// Wraps a length-`2n` interleaved buffer.
    pub fn new(xy: &'a mut [f64]) -> Self {
        assert!(xy.len().is_multiple_of(2), "interleaved buffer must have even length");
        BtbXy { xy: SharedSlice::new(xy) }
    }
}

impl XyLayout for BtbXy<'_> {
    #[inline]
    unsafe fn get_even(&self, i: usize) -> f64 {
        unsafe { self.xy.get(2 * i) }
    }
    #[inline]
    unsafe fn get_odd(&self, i: usize) -> f64 {
        unsafe { self.xy.get(2 * i + 1) }
    }
    #[inline]
    unsafe fn set_even(&self, i: usize, v: f64) {
        unsafe { self.xy.set(2 * i, v) }
    }
    #[inline]
    unsafe fn set_odd(&self, i: usize, v: f64) {
        unsafe { self.xy.set(2 * i + 1, v) }
    }
    #[inline]
    fn vector_bases(&self) -> Option<LayoutBases> {
        Some(LayoutBases::Btb(RawBase(self.xy.base_ptr())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_layout_roundtrip() {
        let mut e = vec![0.0; 4];
        let mut o = vec![0.0; 4];
        let l = SplitXy::new(&mut e, &mut o);
        unsafe {
            l.set_even(1, 2.5);
            l.set_odd(1, -1.5);
            assert_eq!(l.get_even(1), 2.5);
            assert_eq!(l.get_odd(1), -1.5);
            assert_eq!(l.get_even(0), 0.0);
        }
    }

    #[test]
    fn btb_layout_interleaves() {
        let mut xy = vec![0.0; 8];
        {
            let l = BtbXy::new(&mut xy);
            unsafe {
                l.set_even(2, 7.0);
                l.set_odd(2, 9.0);
                assert_eq!(l.get_even(2), 7.0);
                assert_eq!(l.get_odd(2), 9.0);
            }
        }
        // Physical interleaving: even at 2i, odd at 2i+1.
        assert_eq!(xy[4], 7.0);
        assert_eq!(xy[5], 9.0);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn btb_requires_even_buffer() {
        let mut xy = vec![0.0; 5];
        BtbXy::new(&mut xy);
    }

    #[test]
    #[should_panic]
    fn split_requires_equal_lengths() {
        let mut e = vec![0.0; 3];
        let mut o = vec![0.0; 4];
        SplitXy::new(&mut e, &mut o);
    }
}
