//! Storage layouts for the two live iterate vectors.
//!
//! FBMPK keeps exactly two iterates alive: the current even power (in the
//! paper's Algorithm 2, `xy[2i]`) and the current odd power (`xy[2i+1]`).
//! The paper evaluates two layouts (§III-C, Fig. 10):
//!
//! * **Split** — two independent arrays; the plain "FB" ablation variant,
//! * **Back-to-back (BtB)** — one interleaved array of length `2n`, so the
//!   paired loads `x_even[c]` / `x_odd[c]` in the merged inner loops land on
//!   the same cache line.
//!
//! Both implement [`XyLayout`], so the colored kernel is written once and
//! monomorphized per layout — the ablation compares identical code paths.

use fbmpk_parallel::SharedSlice;

/// Accessors for the even/odd iterate pair, shared across worker threads.
///
/// # Safety
/// All methods inherit the [`SharedSlice`] contract: the colored schedule
/// guarantees that writes are row-disjoint and reads are phase-separated
/// from conflicting writes.
pub trait XyLayout: Sync {
    /// Reads the even-iterate entry at row `i`.
    ///
    /// # Safety
    /// No concurrent writer for row `i` in this phase.
    unsafe fn get_even(&self, i: usize) -> f64;
    /// Reads the odd-iterate entry at row `i`.
    ///
    /// # Safety
    /// No concurrent writer for row `i` in this phase.
    unsafe fn get_odd(&self, i: usize) -> f64;
    /// Writes the even-iterate entry at row `i`.
    ///
    /// # Safety
    /// Caller owns row `i` in this phase.
    unsafe fn set_even(&self, i: usize, v: f64);
    /// Writes the odd-iterate entry at row `i`.
    ///
    /// # Safety
    /// Caller owns row `i` in this phase.
    unsafe fn set_odd(&self, i: usize, v: f64);
}

/// Two independent arrays (the "FB" ablation variant, no BtB).
pub struct SplitXy<'a> {
    even: SharedSlice<'a, f64>,
    odd: SharedSlice<'a, f64>,
}

impl<'a> SplitXy<'a> {
    /// Wraps two length-`n` buffers.
    pub fn new(even: &'a mut [f64], odd: &'a mut [f64]) -> Self {
        assert_eq!(even.len(), odd.len());
        SplitXy { even: SharedSlice::new(even), odd: SharedSlice::new(odd) }
    }
}

impl XyLayout for SplitXy<'_> {
    #[inline]
    unsafe fn get_even(&self, i: usize) -> f64 {
        unsafe { self.even.get(i) }
    }
    #[inline]
    unsafe fn get_odd(&self, i: usize) -> f64 {
        unsafe { self.odd.get(i) }
    }
    #[inline]
    unsafe fn set_even(&self, i: usize, v: f64) {
        unsafe { self.even.set(i, v) }
    }
    #[inline]
    unsafe fn set_odd(&self, i: usize, v: f64) {
        unsafe { self.odd.set(i, v) }
    }
}

/// The paper's back-to-back interleaved array: even iterate at `xy[2i]`,
/// odd at `xy[2i+1]` (§III-C, Fig. 5).
pub struct BtbXy<'a> {
    xy: SharedSlice<'a, f64>,
}

impl<'a> BtbXy<'a> {
    /// Wraps a length-`2n` interleaved buffer.
    pub fn new(xy: &'a mut [f64]) -> Self {
        assert!(xy.len().is_multiple_of(2), "interleaved buffer must have even length");
        BtbXy { xy: SharedSlice::new(xy) }
    }
}

impl XyLayout for BtbXy<'_> {
    #[inline]
    unsafe fn get_even(&self, i: usize) -> f64 {
        unsafe { self.xy.get(2 * i) }
    }
    #[inline]
    unsafe fn get_odd(&self, i: usize) -> f64 {
        unsafe { self.xy.get(2 * i + 1) }
    }
    #[inline]
    unsafe fn set_even(&self, i: usize, v: f64) {
        unsafe { self.xy.set(2 * i, v) }
    }
    #[inline]
    unsafe fn set_odd(&self, i: usize, v: f64) {
        unsafe { self.xy.set(2 * i + 1, v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_layout_roundtrip() {
        let mut e = vec![0.0; 4];
        let mut o = vec![0.0; 4];
        let l = SplitXy::new(&mut e, &mut o);
        unsafe {
            l.set_even(1, 2.5);
            l.set_odd(1, -1.5);
            assert_eq!(l.get_even(1), 2.5);
            assert_eq!(l.get_odd(1), -1.5);
            assert_eq!(l.get_even(0), 0.0);
        }
    }

    #[test]
    fn btb_layout_interleaves() {
        let mut xy = vec![0.0; 8];
        {
            let l = BtbXy::new(&mut xy);
            unsafe {
                l.set_even(2, 7.0);
                l.set_odd(2, 9.0);
                assert_eq!(l.get_even(2), 7.0);
                assert_eq!(l.get_odd(2), 9.0);
            }
        }
        // Physical interleaving: even at 2i, odd at 2i+1.
        assert_eq!(xy[4], 7.0);
        assert_eq!(xy[5], 9.0);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn btb_requires_even_buffer() {
        let mut xy = vec![0.0; 5];
        BtbXy::new(&mut xy);
    }

    #[test]
    #[should_panic]
    fn split_requires_equal_lengths() {
        let mut e = vec![0.0; 3];
        let mut o = vec![0.0; 4];
        SplitXy::new(&mut e, &mut o);
    }
}
