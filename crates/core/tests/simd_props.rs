//! Property tests for the SIMD lane kernels and the vectorized FBMPK
//! pipeline.
//!
//! # The ULP bound is zero
//!
//! The lane kernels are constructed for *bit-identity* with the pre-SIMD
//! scalar kernels, not mere closeness: they use separate multiply and add
//! (never FMA), keep one independent accumulator per lane exactly like the
//! 4-way unrolled scalar loops, fold the remainder into lane 0, and reduce
//! with a fixed-shape pairwise tree. Every agreement assertion below is
//! therefore `to_bits` equality — if a refactor introduces FMA or reorders
//! the reduction, these properties fail rather than drifting quietly.
//!
//! Pipeline-level properties compare FBMPK (and the level-blocked
//! wavefront) against the standard MPK reference; those use a relative
//! tolerance because the *algorithms* associate differently, SIMD or not.
//!
//! The whole suite runs in both feature states (`--features simd` and
//! default) in CI; under the scalar fallback the dispatched kernels are
//! trivially the scalar kernels, under AVX2/NEON the same assertions pin
//! the vector paths.

use fbmpk::{BlockingMode, FbmpkOptions, FbmpkPlan, StandardMpk, VectorLayout};
use fbmpk_reorder::AbmcParams;
use fbmpk_sparse::simd;
use fbmpk_sparse::spmv::row_dot_unrolled4;
use fbmpk_sparse::vecops::rel_err_inf;
use fbmpk_sparse::Csr;
use proptest::collection;
use proptest::prelude::*;

/// One sparse row (`cols`, `vals`) plus a gather source `x` of length `n`.
fn row_case() -> impl Strategy<Value = (Vec<u32>, Vec<f64>, Vec<f64>)> {
    (1usize..200, 0usize..48).prop_flat_map(|(n, len)| {
        (
            collection::vec(0u32..n as u32, len),
            collection::vec(-100f64..100.0, len),
            collection::vec(-100f64..100.0, n),
        )
    })
}

/// A suite matrix drawn from three structurally different generators:
/// a 5-point Poisson grid (regular short rows), a random banded matrix
/// (medium rows, local structure), and an R-MAT graph (skewed degrees).
fn gen_matrix(family: usize, size: usize, seed: u64) -> Csr {
    match family % 3 {
        0 => fbmpk_gen::poisson::grid2d_5pt(size, size + 3),
        1 => fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n: size * 16,
            nnz_per_row: 6.0,
            bandwidth: size * 4,
            seed,
        }),
        _ => fbmpk_gen::rmat::rmat(fbmpk_gen::rmat::RmatParams {
            scale: 6,
            edge_factor: 4,
            seed,
            ..Default::default()
        }),
    }
}

/// A deterministic, structure-exercising start vector.
fn x0_for(n: usize, seed: u64) -> Vec<f64> {
    (0..n).map(|i| ((i as u64 * 13 + seed) % 17) as f64 - 8.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dispatched row dot == scalar lane fallback == pre-SIMD unrolled
    /// kernel, all bit-for-bit (the 0-ULP contract).
    #[test]
    fn row_dot_bit_identical_across_dispatch(case in row_case()) {
        let (cols, vals, x) = case;
        let dispatched = simd::row_dot(&cols, &vals, &x);
        let scalar = simd::row_dot_scalar(&cols, &vals, &x);
        let pre_pr = row_dot_unrolled4(&cols, &vals, &x);
        prop_assert_eq!(dispatched.to_bits(), scalar.to_bits());
        prop_assert_eq!(scalar.to_bits(), pre_pr.to_bits());
    }

    /// The BtB kernels: the dispatched even-only and dual-stream dots are
    /// bit-identical to their scalar fallbacks, and the split-layout dual
    /// dot agrees bitwise with the interleaved one on the same logical
    /// vectors.
    #[test]
    fn btb_and_split_dots_bit_identical(
        case in row_case(),
        init_even in -10f64..10.0,
        init_odd in -10f64..10.0,
    ) {
        let (cols, vals, x) = case;
        let n = x.len();
        // Interleave x (even slots) with a shifted copy (odd slots).
        let xy: Vec<f64> = (0..2 * n)
            .map(|i| if i % 2 == 0 { x[i / 2] } else { x[i / 2] * 0.5 - 1.0 })
            .collect();
        let xe: Vec<f64> = (0..n).map(|i| xy[2 * i]).collect();
        let xo: Vec<f64> = (0..n).map(|i| xy[2 * i + 1]).collect();

        let even = simd::btb_even_dot(&cols, &vals, &xy, init_even);
        let even_scalar = simd::btb_even_dot_scalar(&cols, &vals, &xy, init_even);
        prop_assert_eq!(even.to_bits(), even_scalar.to_bits());

        let dual = simd::btb_dual_dot(&cols, &vals, &xy, init_even, init_odd);
        let dual_scalar = simd::btb_dual_dot_scalar(&cols, &vals, &xy, init_even, init_odd);
        prop_assert_eq!(dual.0.to_bits(), dual_scalar.0.to_bits());
        prop_assert_eq!(dual.1.to_bits(), dual_scalar.1.to_bits());

        let split = simd::split_dual_dot(&cols, &vals, &xe, &xo, init_even, init_odd);
        prop_assert_eq!(split.0.to_bits(), dual.0.to_bits());
        prop_assert_eq!(split.1.to_bits(), dual.1.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full FBMPK pipeline agrees with the standard MPK reference for
    /// every generator family, both `k` parities (head-only, tail), both
    /// vector layouts, and serial plus parallel thread counts — whatever
    /// SIMD level the host dispatches to.
    #[test]
    fn fbmpk_matches_standard_across_configs(
        family in 0usize..3,
        size in 4usize..10,
        k in 1usize..9,
        tsel in 0usize..3,
        lsel in 0usize..2,
        seed in 0u64..1024,
    ) {
        let a = gen_matrix(family, size, seed);
        let nthreads = [1, 2, 4][tsel];
        let opts = FbmpkOptions {
            nthreads,
            reorder: (nthreads > 1)
                .then(|| AbmcParams { nblocks: 8, ..Default::default() }),
            layout: if lsel == 0 { VectorLayout::BackToBack } else { VectorLayout::Split },
            ..Default::default()
        };
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        let reference = StandardMpk::new(&a, 1).unwrap();
        let x0 = x0_for(a.nrows(), seed);
        let got = plan.power(&x0, k);
        let want = reference.power(&x0, k);
        prop_assert!(
            rel_err_inf(&got, &want) < 1e-9,
            "family={} k={} nthreads={} layout={}",
            family, k, nthreads, lsel
        );
    }

    /// Level-blocked execution computes the same powers as streaming for
    /// every band size, including the auto-sized one.
    #[test]
    fn level_blocked_matches_standard_across_bands(
        family in 0usize..3,
        size in 4usize..10,
        k in 4usize..9,
        tsel in 0usize..2,
        band in 0usize..4,
        seed in 0u64..1024,
    ) {
        let a = gen_matrix(family, size, seed);
        let nthreads = [1, 2][tsel];
        let opts = FbmpkOptions {
            nthreads,
            reorder: (nthreads > 1)
                .then(|| AbmcParams { nblocks: 8, ..Default::default() }),
            blocking: BlockingMode::LevelBlocked {
                tile_powers: (band > 0).then_some(band),
            },
            ..Default::default()
        };
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        let reference = StandardMpk::new(&a, 1).unwrap();
        let x0 = x0_for(a.nrows(), seed);
        let got = plan.power(&x0, k);
        let want = reference.power(&x0, k);
        prop_assert!(
            rel_err_inf(&got, &want) < 1e-9,
            "family={} k={} nthreads={} band={}",
            family, k, nthreads, band
        );
    }
}
