//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper evaluates on SuiteSparse matrices distributed in Matrix Market
//! format. Our benchmarks default to synthetic analogs (`fbmpk-gen`), but
//! this reader lets the real inputs drop in unchanged. Supported headers:
//! `matrix coordinate (real|integer|pattern) (general|symmetric)`.

use crate::{Coo, Csr, Result, SparseError};
use std::io::{BufRead, Write};

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; off-diagonal entries are mirrored.
    Symmetric,
}

/// Reads a Matrix Market coordinate stream into CSR.
///
/// Symmetric inputs are expanded (each off-diagonal entry mirrored), matching
/// how SpMV benchmarks consume SuiteSparse matrices. `pattern` matrices get
/// value `1.0` per entry.
///
/// The reader treats the stream as untrusted input: every malformed line —
/// bad header, unparsable size line, short or non-numeric entries, 0-based
/// or out-of-range indices, duplicate coordinates, non-finite values, or a
/// truncated file — is reported as a typed error carrying the 1-based line
/// number where parsing failed.
///
/// # Errors
/// Returns [`SparseError::ParseAt`] (with the offending line number) on
/// malformed lines, [`SparseError::Parse`] on stream-level problems (empty
/// stream, entry-count mismatch against the size line), and
/// [`SparseError::Io`] on read failures.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Csr> {
    let at = |line: usize, msg: String| SparseError::ParseAt { line, msg };
    let mut lines = reader.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (header_no, header) = loop {
        match lines.next() {
            Some((no, Ok(l))) => {
                if !l.trim().is_empty() {
                    break (no, l);
                }
            }
            Some((_, Err(e))) => return Err(SparseError::Io(e.to_string())),
            None => return Err(SparseError::Parse("empty stream".into())),
        }
    };
    let h: Vec<String> = header.split_whitespace().map(|s| s.to_ascii_lowercase()).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(at(header_no, format!("bad header: {header}")));
    }
    if h[2] != "coordinate" {
        return Err(at(header_no, format!("unsupported format {}, only coordinate", h[2])));
    }
    let field = h[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(at(header_no, format!("unsupported field type {field}")));
    }
    let sym = match h[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => return Err(at(header_no, format!("unsupported symmetry {other}"))),
    };

    // Size line: first non-comment, non-empty line.
    let (size_no, size_line) = loop {
        match lines.next() {
            Some((no, Ok(l))) => {
                let t = l.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (no, l);
                }
            }
            Some((_, Err(e))) => return Err(SparseError::Io(e.to_string())),
            None => return Err(SparseError::Parse("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| at(size_no, format!("bad size line: {size_line}"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(at(size_no, format!("size line needs 3 fields: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    // Trusting the header nnz for the reservation would let a malformed
    // file request absurd allocations; clamp and let Coo grow as needed.
    let cap = if sym == MmSymmetry::Symmetric { nnz.saturating_mul(2) } else { nnz };
    let mut coo = Coo::with_capacity(nrows, ncols, cap.min(1 << 24));
    // Duplicate coordinates in a coordinate file are ambiguous (some
    // tools sum them, some take the last); reject them outright with the
    // offending line rather than guess. Capacity is clamped like `coo`'s.
    let mut seen_coords = std::collections::HashSet::with_capacity(nnz.min(1 << 24));
    let mut seen = 0usize;
    for (no, line) in lines {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| at(no, format!("bad row index in entry: {t}")))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| at(no, format!("bad column index in entry: {t}")))?;
        let v: f64 = if field == "pattern" {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| at(no, format!("bad entry value: {t}")))?
        };
        if r == 0 || c == 0 {
            return Err(at(no, "matrix market indices are 1-based".into()));
        }
        let (r, c) = (r - 1, c - 1);
        if r >= nrows || c >= ncols {
            return Err(at(
                no,
                format!("entry ({}, {}) outside {nrows}x{ncols} matrix", r + 1, c + 1),
            ));
        }
        if !v.is_finite() {
            return Err(at(no, format!("non-finite value {v} at entry ({}, {})", r + 1, c + 1)));
        }
        if !seen_coords.insert((r, c)) {
            return Err(at(no, format!("duplicate entry ({}, {})", r + 1, c + 1)));
        }
        match sym {
            MmSymmetry::General => coo.push(r, c, v)?,
            MmSymmetry::Symmetric => coo.push_sym(r, c, v)?,
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "expected {nnz} entries, found {seen} (truncated or padded stream)"
        )));
    }
    Ok(coo.to_csr())
}

/// Reads a Matrix Market file from disk.
///
/// # Errors
/// See [`read_matrix_market`]; additionally maps file-open failures to
/// [`SparseError::Io`].
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<Csr> {
    let f = std::fs::File::open(path).map_err(|e| SparseError::Io(format!("{path:?}: {e}")))?;
    read_matrix_market(std::io::BufReader::new(f))
}

/// Writes a matrix as `matrix coordinate real general`.
///
/// # Errors
/// Returns [`SparseError::Io`] on write failures.
pub fn write_matrix_market<W: Write>(m: &Csr, mut w: W) -> Result<()> {
    let io = |e: std::io::Error| SparseError::Io(e.to_string());
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io)?;
    writeln!(w, "% written by fbmpk-sparse").map_err(io)?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz()).map_err(io)?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {v:.17e}", r + 1, c + 1).map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   3 3 3\n\
                   1 1 2.5\n\
                   2 3 -1.0\n\
                   3 1 4.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(1, 2), -1.0);
        assert_eq!(m.get(2, 0), 4.0);
    }

    #[test]
    fn parse_symmetric_expands() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
                   2 2 2\n\
                   1 1 1.0\n\
                   2 1 5.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn parse_pattern_gives_ones() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 1\n\
                   1 2\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn reject_bad_header_and_counts() {
        assert!(read_matrix_market("nonsense\n1 1 0\n".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(zero_based.as_bytes()).is_err());
        let array = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(read_matrix_market(array.as_bytes()).is_err());
    }

    fn parse_line_of(src: &str) -> usize {
        match read_matrix_market(src.as_bytes()) {
            Err(SparseError::ParseAt { line, .. }) => line,
            other => panic!("expected ParseAt, got {other:?}"),
        }
    }

    #[test]
    fn bad_header_reports_its_line() {
        assert_eq!(parse_line_of("nonsense\n1 1 0\n"), 1);
        // Leading blank lines still count toward the physical line number.
        assert_eq!(parse_line_of("\n\nnonsense\n1 1 0\n"), 3);
        assert_eq!(parse_line_of("%%MatrixMarket matrix array real general\n2 2\n"), 1);
        assert_eq!(parse_line_of("%%MatrixMarket matrix coordinate complex general\n1 1 0\n"), 1);
        assert_eq!(parse_line_of("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"), 1);
    }

    #[test]
    fn bad_size_line_reports_its_line() {
        let src = "%%MatrixMarket matrix coordinate real general\n% note\nnot numbers\n";
        assert_eq!(parse_line_of(src), 3);
        let short = "%%MatrixMarket matrix coordinate real general\n2 2\n";
        assert_eq!(parse_line_of(short), 2);
    }

    #[test]
    fn bad_entries_report_their_line() {
        let head = "%%MatrixMarket matrix coordinate real general\n3 3 2\n";
        // Non-numeric row index.
        assert_eq!(parse_line_of(&format!("{head}1 1 1.0\nx 2 1.0\n")), 4);
        // Missing value field.
        assert_eq!(parse_line_of(&format!("{head}1 1 1.0\n2 2\n")), 4);
        // Non-numeric value.
        assert_eq!(parse_line_of(&format!("{head}1 1 one\n2 2 1.0\n")), 3);
        // 0-based index.
        assert_eq!(parse_line_of(&format!("{head}0 1 1.0\n2 2 1.0\n")), 3);
        // Comment lines between entries still count physically.
        assert_eq!(parse_line_of(&format!("{head}1 1 1.0\n% pad\nx 2 1.0\n")), 5);
    }

    #[test]
    fn out_of_range_duplicate_and_nonfinite_entries_rejected() {
        let head = "%%MatrixMarket matrix coordinate real general\n2 2 2\n";
        assert_eq!(parse_line_of(&format!("{head}1 1 1.0\n3 1 1.0\n")), 4);
        assert_eq!(parse_line_of(&format!("{head}1 1 1.0\n1 3 1.0\n")), 4);
        assert_eq!(parse_line_of(&format!("{head}1 2 1.0\n1 2 2.0\n")), 4);
        assert_eq!(parse_line_of(&format!("{head}1 1 nan\n1 2 1.0\n")), 3);
        assert_eq!(parse_line_of(&format!("{head}1 1 inf\n1 2 1.0\n")), 3);
    }

    #[test]
    fn truncated_stream_is_typed() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        match read_matrix_market(short.as_bytes()) {
            Err(SparseError::Parse(m)) => assert!(m.contains("expected 2 entries"), "{m}"),
            other => panic!("expected Parse, got {other:?}"),
        }
        match read_matrix_market("".as_bytes()) {
            Err(SparseError::Parse(m)) => assert!(m.contains("empty"), "{m}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn write_read_round_trip() {
        let m = Csr::from_dense(&[&[1.5, 0.0, 2.0], &[0.0, -3.25, 0.0], &[0.0, 0.0, 1e-20]]);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let m2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(m, m2);
    }
}
