//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper evaluates on SuiteSparse matrices distributed in Matrix Market
//! format. Our benchmarks default to synthetic analogs (`fbmpk-gen`), but
//! this reader lets the real inputs drop in unchanged. Supported headers:
//! `matrix coordinate (real|integer|pattern) (general|symmetric)`.

use crate::{Coo, Csr, Result, SparseError};
use std::io::{BufRead, Write};

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; off-diagonal entries are mirrored.
    Symmetric,
}

/// Reads a Matrix Market coordinate stream into CSR.
///
/// Symmetric inputs are expanded (each off-diagonal entry mirrored), matching
/// how SpMV benchmarks consume SuiteSparse matrices. `pattern` matrices get
/// value `1.0` per entry.
///
/// # Errors
/// Returns [`SparseError::Parse`] on malformed input and [`SparseError::Io`]
/// on read failures.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Csr> {
    let mut lines = reader.lines();
    let header = loop {
        match lines.next() {
            Some(Ok(l)) => {
                if !l.trim().is_empty() {
                    break l;
                }
            }
            Some(Err(e)) => return Err(SparseError::Io(e.to_string())),
            None => return Err(SparseError::Parse("empty stream".into())),
        }
    };
    let h: Vec<String> = header.split_whitespace().map(|s| s.to_ascii_lowercase()).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {header}")));
    }
    if h[2] != "coordinate" {
        return Err(SparseError::Parse(format!("unsupported format {}, only coordinate", h[2])));
    }
    let field = h[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(SparseError::Parse(format!("unsupported field type {field}")));
    }
    let sym = match h[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => return Err(SparseError::Parse(format!("unsupported symmetry {other}"))),
    };

    // Size line: first non-comment, non-empty line.
    let size_line = loop {
        match lines.next() {
            Some(Ok(l)) => {
                let t = l.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break l;
                }
            }
            Some(Err(e)) => return Err(SparseError::Io(e.to_string())),
            None => return Err(SparseError::Parse("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| SparseError::Parse(format!("bad size line: {size_line}"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("size line needs 3 fields: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    // Trusting the header nnz for the reservation would let a malformed
    // file request absurd allocations; clamp and let Coo grow as needed.
    let cap = if sym == MmSymmetry::Symmetric { nnz.saturating_mul(2) } else { nnz };
    let mut coo = Coo::with_capacity(nrows, ncols, cap.min(1 << 24));
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SparseError::Parse(format!("bad entry: {t}")))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SparseError::Parse(format!("bad entry: {t}")))?;
        let v: f64 = if field == "pattern" {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Parse(format!("bad entry value: {t}")))?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse("matrix market indices are 1-based".into()));
        }
        let (r, c) = (r - 1, c - 1);
        match sym {
            MmSymmetry::General => coo.push(r, c, v)?,
            MmSymmetry::Symmetric => coo.push_sym(r, c, v)?,
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Reads a Matrix Market file from disk.
///
/// # Errors
/// See [`read_matrix_market`]; additionally maps file-open failures to
/// [`SparseError::Io`].
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<Csr> {
    let f = std::fs::File::open(path).map_err(|e| SparseError::Io(format!("{path:?}: {e}")))?;
    read_matrix_market(std::io::BufReader::new(f))
}

/// Writes a matrix as `matrix coordinate real general`.
///
/// # Errors
/// Returns [`SparseError::Io`] on write failures.
pub fn write_matrix_market<W: Write>(m: &Csr, mut w: W) -> Result<()> {
    let io = |e: std::io::Error| SparseError::Io(e.to_string());
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io)?;
    writeln!(w, "% written by fbmpk-sparse").map_err(io)?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz()).map_err(io)?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {v:.17e}", r + 1, c + 1).map_err(io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   3 3 3\n\
                   1 1 2.5\n\
                   2 3 -1.0\n\
                   3 1 4.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(1, 2), -1.0);
        assert_eq!(m.get(2, 0), 4.0);
    }

    #[test]
    fn parse_symmetric_expands() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
                   2 2 2\n\
                   1 1 1.0\n\
                   2 1 5.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn parse_pattern_gives_ones() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 1\n\
                   1 2\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn reject_bad_header_and_counts() {
        assert!(read_matrix_market("nonsense\n1 1 0\n".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(zero_based.as_bytes()).is_err());
        let array = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(read_matrix_market(array.as_bytes()).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let m = Csr::from_dense(&[&[1.5, 0.0, 2.0], &[0.0, -3.25, 0.0], &[0.0, 0.0, 1e-20]]);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let m2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(m, m2);
    }
}
