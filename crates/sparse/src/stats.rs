//! Structural matrix statistics — the quantities Table II of the paper
//! reports for each input (rows, nnz, nnz/row) plus locality-relevant
//! extras (bandwidth, profile, symmetry).

use crate::Csr;

/// Summary statistics of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// Mean entries per row (`nnz / nrows`), the paper's `#nnz/N` column.
    pub nnz_per_row: f64,
    /// Minimum entries in any row.
    pub min_row_nnz: usize,
    /// Maximum entries in any row.
    pub max_row_nnz: usize,
    /// Structural bandwidth `max |i-j|`.
    pub bandwidth: usize,
    /// Mean per-row bandwidth (average distance of the farthest entry) —
    /// a locality indicator for the forward/backward sweeps.
    pub avg_row_bandwidth: f64,
    /// Whether the matrix is numerically symmetric (tol `1e-12`).
    pub symmetric: bool,
    /// Fraction of rows with a stored diagonal entry.
    pub diag_coverage: f64,
}

impl MatrixStats {
    /// Computes statistics for `a`.
    pub fn compute(a: &Csr) -> Self {
        let nrows = a.nrows();
        let mut min_row = usize::MAX;
        let mut max_row = 0usize;
        let mut bandwidth = 0usize;
        let mut row_bw_sum = 0.0f64;
        let mut diag_rows = 0usize;
        for r in 0..nrows {
            let k = a.row_nnz(r);
            min_row = min_row.min(k);
            max_row = max_row.max(k);
            let mut row_bw = 0usize;
            for &c in a.row_cols(r) {
                let d = r.abs_diff(c as usize);
                row_bw = row_bw.max(d);
                if c as usize == r {
                    diag_rows += 1;
                }
            }
            bandwidth = bandwidth.max(row_bw);
            row_bw_sum += row_bw as f64;
        }
        if nrows == 0 {
            min_row = 0;
        }
        MatrixStats {
            nrows,
            ncols: a.ncols(),
            nnz: a.nnz(),
            nnz_per_row: if nrows == 0 { 0.0 } else { a.nnz() as f64 / nrows as f64 },
            min_row_nnz: min_row,
            max_row_nnz: max_row,
            bandwidth,
            avg_row_bandwidth: if nrows == 0 { 0.0 } else { row_bw_sum / nrows as f64 },
            symmetric: a.nrows() == a.ncols() && a.is_symmetric(1e-12),
            diag_coverage: if nrows == 0 { 0.0 } else { diag_rows as f64 / nrows as f64 },
        }
    }
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}, nnz={} ({:.2}/row, min {}, max {}), bw={} (avg {:.1}), {}symmetric, diag {:.0}%",
            self.nrows,
            self.ncols,
            self.nnz,
            self.nnz_per_row,
            self.min_row_nnz,
            self.max_row_nnz,
            self.bandwidth,
            self.avg_row_bandwidth,
            if self.symmetric { "" } else { "un" },
            self.diag_coverage * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_matrix() {
        let a = Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 4.0, 1.0, 0.0],
            &[0.0, 1.0, 4.0, 1.0],
            &[0.0, 0.0, 1.0, 4.0],
        ]);
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nrows, 4);
        assert_eq!(s.nnz, 10);
        assert!((s.nnz_per_row - 2.5).abs() < 1e-15);
        assert_eq!(s.min_row_nnz, 2);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.bandwidth, 1);
        assert!(s.symmetric);
        assert_eq!(s.diag_coverage, 1.0);
    }

    #[test]
    fn stats_of_empty_matrix() {
        let s = MatrixStats::compute(&Csr::zero(0, 0));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.nnz_per_row, 0.0);
        assert_eq!(s.min_row_nnz, 0);
    }

    #[test]
    fn unsymmetric_flagged() {
        let a = Csr::from_dense(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let s = MatrixStats::compute(&a);
        assert!(!s.symmetric);
        assert_eq!(s.diag_coverage, 1.0);
    }

    #[test]
    fn display_formats() {
        let s = MatrixStats::compute(&Csr::identity(3));
        let txt = format!("{s}");
        assert!(txt.contains("3x3"));
        assert!(txt.contains("nnz=3"));
    }
}
