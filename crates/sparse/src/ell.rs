//! ELLPACK storage (Kincaid et al., ITPACK 2C — paper §VII).
//!
//! The paper's future-work list names ELLPACK as a vectorization-friendly
//! alternative to CSR: every row is padded to the matrix's maximum row
//! length and stored column-major, so consecutive rows advance in
//! lock-step. Efficient when row lengths are uniform (stencils); wasteful
//! on skewed inputs — [`SellCs`](crate::sellcs::SellCs) fixes that with
//! chunking and σ-sorting.

use crate::Csr;

/// A sparse matrix in ELLPACK format.
#[derive(Debug, Clone, PartialEq)]
pub struct Ell {
    nrows: usize,
    ncols: usize,
    /// Padded row width (max row nnz).
    width: usize,
    /// Column indices, column-major (`col_idx[j * nrows + r]`); padding
    /// repeats the row's last valid column (value 0) so gathers stay
    /// in-bounds.
    col_idx: Vec<u32>,
    /// Values, column-major; padding slots are `0.0`.
    values: Vec<f64>,
    nnz: usize,
}

impl Ell {
    /// Converts a CSR matrix to ELLPACK.
    pub fn from_csr(a: &Csr) -> Self {
        let nrows = a.nrows();
        let width = (0..nrows).map(|r| a.row_nnz(r)).max().unwrap_or(0);
        let mut col_idx = vec![0u32; width * nrows];
        let mut values = vec![0.0f64; width * nrows];
        for r in 0..nrows {
            let cols = a.row_cols(r);
            let vals = a.row_vals(r);
            let pad_col = cols.last().copied().unwrap_or(0);
            for j in 0..width {
                let slot = j * nrows + r;
                if j < cols.len() {
                    col_idx[slot] = cols[j];
                    values[slot] = vals[j];
                } else {
                    col_idx[slot] = pad_col;
                }
            }
        }
        Ell { nrows, ncols: a.ncols(), width, col_idx, values, nnz: a.nnz() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros (excluding padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Padded width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Padding overhead `padded / nnz` (∞-free: `1.0` for empty matrices).
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            (self.width * self.nrows) as f64 / self.nnz as f64
        }
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        for j in 0..self.width {
            let base = j * self.nrows;
            for (r, yr) in y.iter_mut().enumerate() {
                // Padding contributes 0.0 * x[pad_col].
                *yr += self.values[base + r] * x[self.col_idx[base + r] as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv;

    fn sample() -> Csr {
        Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[0.0, 0.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn spmv_matches_csr() {
        let a = sample();
        let e = Ell::from_csr(&a);
        assert_eq!(e.width(), 3);
        assert_eq!(e.nnz(), a.nnz());
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut y1 = vec![0.0; 4];
        let mut y2 = vec![0.0; 4];
        spmv(&a, &x, &mut y1);
        e.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn uniform_rows_no_padding() {
        let a = fbmpk_gen_stub::tridiag_interior(16);
        let e = Ell::from_csr(&a);
        // Tridiagonal: rows have 2..3 entries, width 3.
        assert_eq!(e.width(), 3);
        assert!(e.padding_ratio() < 1.1);
    }

    /// Local tiny generator to avoid a dev-dependency cycle with fbmpk-gen.
    mod fbmpk_gen_stub {
        use crate::{Coo, Csr};
        pub fn tridiag_interior(n: usize) -> Csr {
            let mut coo = Coo::new(n, n);
            for i in 0..n {
                coo.push(i, i, 2.0).unwrap();
                if i > 0 {
                    coo.push(i, i - 1, -1.0).unwrap();
                    coo.push(i - 1, i, -1.0).unwrap();
                }
            }
            coo.to_csr()
        }
    }

    #[test]
    fn skewed_rows_pad_heavily() {
        // One dense row forces width = n.
        let mut rows = vec![vec![0.0; 32]; 32];
        rows[0] = vec![1.0; 32];
        for (i, r) in rows.iter_mut().enumerate().skip(1) {
            r[i] = 1.0;
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Csr::from_dense(&refs);
        let e = Ell::from_csr(&a);
        assert_eq!(e.width(), 32);
        assert!(e.padding_ratio() > 10.0);
        // SELL-C-sigma handles the same input with far less padding.
        let s = crate::sellcs::SellCs::from_csr(&a, 4, 32);
        assert!(s.padding_ratio() < e.padding_ratio() / 4.0);
    }

    #[test]
    fn empty_and_zero_row_matrices() {
        let z = Ell::from_csr(&Csr::zero(3, 3));
        assert_eq!(z.width(), 0);
        assert_eq!(z.padding_ratio(), 1.0);
        let mut y = vec![9.0; 3];
        z.spmv(&[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
