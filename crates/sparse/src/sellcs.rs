//! SELL-C-σ storage (Kreutzer et al., SISC 2014).
//!
//! The paper's §VII lists "Sliced ELL" as the future-work storage format for
//! vectorizing FBMPK. We implement it as an extension: rows are sorted by
//! length within windows of σ rows, grouped into chunks of C rows, and each
//! chunk is padded to its longest row and stored column-major so that C rows
//! advance in lock-step (SIMD-friendly).

use crate::{Csr, Permutation};

/// A sparse matrix in SELL-C-σ format.
#[derive(Debug, Clone, PartialEq)]
pub struct SellCs {
    nrows: usize,
    ncols: usize,
    /// Chunk height C.
    chunk: usize,
    /// Sorting window σ (multiple of C; `0` means no sorting).
    sigma: usize,
    /// Start offset of each chunk in `col_idx`/`values` (len = nchunks + 1).
    chunk_ptr: Vec<usize>,
    /// Padded width of each chunk.
    chunk_width: Vec<usize>,
    /// Actual nnz of each (possibly permuted) row.
    row_len: Vec<usize>,
    /// Column indices, column-major within each chunk; padding uses the
    /// row's own index with value 0 so gathers stay in-bounds.
    col_idx: Vec<u32>,
    /// Values, column-major within each chunk.
    values: Vec<f64>,
    /// Row permutation applied by σ-sorting (`new_of_old`); output of
    /// [`SellCs::spmv`] is in *original* row order.
    perm: Permutation,
    /// Cached `perm.order()` view (old row at each new position), so SpMV
    /// does not rebuild it per call.
    order: Vec<u32>,
    nnz: usize,
}

impl SellCs {
    /// Converts a CSR matrix into SELL-C-σ.
    ///
    /// ```
    /// use fbmpk_sparse::{Csr, sellcs::SellCs};
    /// let a = Csr::from_dense(&[&[1.0, 2.0], &[0.0, 3.0]]);
    /// let s = SellCs::from_csr(&a, 2, 2);
    /// let mut y = vec![0.0; 2];
    /// s.spmv(&[1.0, 1.0], &mut y);
    /// assert_eq!(y, vec![3.0, 3.0]);
    /// ```
    ///
    /// # Panics
    /// Panics if `c == 0` or `sigma` is nonzero and not a multiple of `c`.
    pub fn from_csr(a: &Csr, c: usize, sigma: usize) -> Self {
        assert!(c > 0, "chunk height must be positive");
        assert!(sigma == 0 || sigma.is_multiple_of(c), "sigma must be a multiple of C");
        let n = a.nrows();
        // σ-sorting: within each window of σ rows, order by descending nnz.
        let mut order: Vec<u32> = (0..n as u32).collect();
        if sigma > 1 {
            for w in order.chunks_mut(sigma) {
                w.sort_by_key(|&r| std::cmp::Reverse(a.row_nnz(r as usize)));
            }
        }
        let perm = Permutation::from_order(&order).expect("window sort preserves bijection");
        let nchunks = n.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        let mut chunk_width = Vec::with_capacity(nchunks);
        let mut row_len = vec![0usize; n];
        chunk_ptr.push(0);
        let mut total = 0usize;
        for ch in 0..nchunks {
            let lo = ch * c;
            let hi = ((ch + 1) * c).min(n);
            let mut w = 0usize;
            for new_r in lo..hi {
                let old_r = order[new_r] as usize;
                let len = a.row_nnz(old_r);
                row_len[new_r] = len;
                w = w.max(len);
            }
            chunk_width.push(w);
            total += w * c;
            chunk_ptr.push(total);
        }
        let mut col_idx = vec![0u32; total];
        let mut values = vec![0.0f64; total];
        for ch in 0..nchunks {
            let lo = ch * c;
            let w = chunk_width[ch];
            let base = chunk_ptr[ch];
            for lane in 0..c {
                let new_r = lo + lane;
                if new_r >= n {
                    // Padding lanes of the ragged final chunk: keep col 0.
                    for j in 0..w {
                        col_idx[base + j * c + lane] = 0;
                    }
                    continue;
                }
                let old_r = order[new_r] as usize;
                let cols = a.row_cols(old_r);
                let vals = a.row_vals(old_r);
                for j in 0..w {
                    let slot = base + j * c + lane;
                    if j < cols.len() {
                        col_idx[slot] = cols[j];
                        values[slot] = vals[j];
                    } else {
                        // Pad with the row's first column (or 0) and value 0
                        // so padded gathers read a valid x element.
                        col_idx[slot] = cols.first().copied().unwrap_or(0);
                    }
                }
            }
        }
        let order = perm.order();
        SellCs {
            nrows: n,
            ncols: a.ncols(),
            chunk: c,
            sigma,
            chunk_ptr,
            chunk_width,
            row_len,
            col_idx,
            values,
            perm,
            order,
            nnz: a.nnz(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros (excluding padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total padded slots (including padding) — the storage cost.
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// Padding overhead ratio `padded / nnz` (β in the SELL-C-σ paper; 1.0
    /// is optimal).
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_len() as f64 / self.nnz as f64
        }
    }

    /// The σ-sorting row permutation.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Computes `y = A x`, with `y` in original row order.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let c = self.chunk;
        let order = &self.order;
        for ch in 0..self.chunk_width.len() {
            let lo = ch * c;
            let w = self.chunk_width[ch];
            let base = self.chunk_ptr[ch];
            let lanes = c.min(self.nrows - lo);
            let mut acc = [0.0f64; 64];
            let acc = &mut acc[..lanes.min(64)];
            if lanes <= 64 {
                acc.fill(0.0);
                for j in 0..w {
                    let col_base = base + j * c;
                    // Padded slots contribute value 0. The MAC is lane-wise,
                    // so the dispatched vector lowering is bit-identical to
                    // the scalar loop it replaced.
                    crate::simd::sell_mac(
                        &self.values[col_base..col_base + acc.len()],
                        &self.col_idx[col_base..col_base + acc.len()],
                        x,
                        acc,
                    );
                }
                for (lane, &a) in acc.iter().enumerate() {
                    y[order[lo + lane] as usize] = a;
                }
            } else {
                // Rare large-C fallback: per-lane scalar loop.
                for lane in 0..lanes {
                    let mut sum = 0.0;
                    for j in 0..w {
                        let slot = base + j * c + lane;
                        sum += self.values[slot] * x[self.col_idx[slot] as usize];
                    }
                    y[order[lo + lane] as usize] = sum;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv;

    fn sample() -> Csr {
        Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0, 0.0],
            &[1.0, 0.0, 3.0, 0.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0, 7.0],
            &[2.0, 0.0, 1.0, 6.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 9.0],
        ])
    }

    #[test]
    fn spmv_matches_csr_various_c_sigma() {
        let a = sample();
        let x = [1.0, -2.0, 0.5, 3.0, 2.0];
        let mut want = vec![0.0; 5];
        spmv(&a, &x, &mut want);
        for (c, sigma) in [(1, 0), (2, 0), (2, 2), (2, 4), (4, 4), (8, 8), (3, 0)] {
            let s = SellCs::from_csr(&a, c, sigma);
            let mut got = vec![0.0; 5];
            s.spmv(&x, &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-14, "C={c} sigma={sigma}");
            }
        }
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        // Alternating long/short rows: without sorting each 2-chunk pads the
        // short row to the long width; with σ=4 sorting, likes group together.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..8 {
            let mut r = vec![0.0; 8];
            if i % 2 == 0 {
                for v in r.iter_mut() {
                    *v = 1.0;
                }
            } else {
                r[i] = 1.0;
            }
            rows.push(r);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Csr::from_dense(&refs);
        let unsorted = SellCs::from_csr(&a, 2, 0);
        let sorted = SellCs::from_csr(&a, 2, 4);
        assert!(sorted.padding_ratio() < unsorted.padding_ratio());
        assert_eq!(sorted.nnz(), a.nnz());
    }

    #[test]
    fn ragged_final_chunk_handled() {
        let a = sample(); // 5 rows, C=2 -> final chunk has 1 lane
        let s = SellCs::from_csr(&a, 2, 0);
        let x = [1.0; 5];
        let mut got = vec![0.0; 5];
        s.spmv(&x, &mut got);
        let mut want = vec![0.0; 5];
        spmv(&a, &x, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::zero(4, 4);
        let s = SellCs::from_csr(&a, 2, 2);
        assert_eq!(s.padded_len(), 0);
        assert_eq!(s.padding_ratio(), 1.0);
        let mut y = vec![1.0; 4];
        s.spmv(&[0.0; 4], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn sigma_must_be_multiple_of_c() {
        SellCs::from_csr(&Csr::identity(4), 2, 3);
    }
}
