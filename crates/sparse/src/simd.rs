//! Portable SIMD lane abstraction for the sweep kernels.
//!
//! The FBMPK inner loops (CSR row dots, the SELL-C-σ chunk MAC and the
//! forward/backward dual dots over the BtB-interleaved `xy[2n]` vector) are
//! expressed here once against a lane-width-generic wrapper, [`Lanes`], and
//! lowered three ways:
//!
//! * a **scalar fallback** that is *bit-identical* to the pre-existing
//!   unrolled kernels (`spmv::row_dot_unrolled4` and the hand-merged loops
//!   in `fbmpk::kernel`): same accumulator count, same per-lane operation
//!   order, same `(s0 + s1) + (s2 + s3)` reduction tree, remainder folded
//!   into lane 0;
//! * **AVX2** (`x86_64`, runtime-detected) using 4 × f64 vectors;
//! * **NEON** (`aarch64` baseline) using 2 × f64 vector pairs that mirror
//!   the same four logical accumulators.
//!
//! Bit-compatibility is a hard invariant, not best-effort: the vector paths
//! deliberately use separate multiply and add intrinsics (**no FMA**) and a
//! fixed pairwise reduction, so every lane performs exactly the IEEE-754
//! operations of its scalar counterpart in the same order. The existing
//! bit-identity suites therefore pass with the `simd` feature both on and
//! off, and SIMD-vs-scalar agreement is exact (0 ULP) rather than merely
//! bounded.
//!
//! # Safety
//!
//! The `unsafe` in this module is (a) calling `#[target_feature]` functions,
//! guarded by [`detect`]'s runtime CPUID check, (b) unaligned vector
//! loads/stores of `vals`/`acc` slices whose bounds are asserted at function
//! entry, and (c) the `*_ptr` kernel family, which gathers through a raw
//! base pointer. The pointer variants exist because the sweep kernels read
//! vectors other threads are concurrently writing (under the `SharedSlice`
//! phase discipline); materializing a `&[f64]` over that storage would be
//! aliasing UB, so the kernels take `SharedSlice::base_ptr()` and inherit
//! its contract — the caller proves every `cols[j]` slot is in bounds and
//! race-free for the current phase. The safe slice entry points
//! ([`btb_even_dot`], [`btb_dual_dot`], [`split_dual_dot`], [`row_dot`],
//! [`sell_mac`]) assert all bounds before forwarding.
//!
//! Dispatch is decided once per process by [`detect`] (cached in a
//! `OnceLock`): the `simd` cargo feature gates compilation, the
//! `FBMPK_SIMD` environment variable (`scalar` / `off` / `0`) forces the
//! scalar path at runtime, and only scalar can be forced — a vector level
//! that the CPU does not report is never selected, so the `target_feature`
//! contract always holds.

use crate::Csr;
use std::sync::OnceLock;

/// The instruction-set level the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar fallback (also used when the `simd` feature is off
    /// or `FBMPK_SIMD=scalar`).
    Scalar,
    /// x86-64 AVX2, 4 × f64 lanes.
    Avx2,
    /// AArch64 NEON, 2 × f64 lanes (paired to mirror 4 accumulators).
    Neon,
}

impl SimdLevel {
    /// Vector width in f64 lanes (1 for scalar).
    pub fn width(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Avx2 => 4,
            SimdLevel::Neon => 2,
        }
    }

    /// Stable lowercase tag, used in fingerprints and perf-DB records.
    pub fn tag(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// `true` when a vector path (not the scalar fallback) is active.
    pub fn is_accelerated(self) -> bool {
        !matches!(self, SimdLevel::Scalar)
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

/// Returns the SIMD level used by every dispatching kernel in this module.
///
/// Probed once per process: `Scalar` when the `simd` cargo feature is off
/// or `FBMPK_SIMD` is `scalar`/`off`/`0`; otherwise the best level the CPU
/// reports (AVX2 via CPUID on x86-64, NEON unconditionally on aarch64 where
/// it is architecturally baseline).
pub fn detect() -> SimdLevel {
    *LEVEL.get_or_init(|| {
        if !cfg!(feature = "simd") {
            return SimdLevel::Scalar;
        }
        if let Ok(v) = std::env::var("FBMPK_SIMD") {
            if matches!(v.as_str(), "scalar" | "off" | "0") {
                return SimdLevel::Scalar;
            }
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        {
            return SimdLevel::Neon;
        }
        #[allow(unreachable_code)]
        SimdLevel::Scalar
    })
}

/// A `W`-wide bundle of f64 lanes — the portable value type the scalar
/// fallbacks are written against. `W` must be a power of two.
///
/// Each lane is an independent IEEE-754 accumulator: [`Lanes::mul_acc`] is
/// a lane-wise `self += a * b` with separate multiply and add (never fused),
/// and [`Lanes::reduce_tree`] folds adjacent pairs — for `W = 4` exactly
/// `(l0 + l1) + (l2 + l3)`, the reduction the unrolled scalar kernels use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lanes<const W: usize>(pub [f64; W]);

impl<const W: usize> Lanes<W> {
    /// All lanes set to `v`.
    pub const fn splat(v: f64) -> Self {
        Lanes([v; W])
    }

    /// All lanes zero.
    pub const fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Loads the first `W` elements of `v`.
    ///
    /// # Panics
    /// Panics when `v.len() < W`.
    #[inline(always)]
    pub fn load(v: &[f64]) -> Self {
        Lanes(std::array::from_fn(|i| v[i]))
    }

    /// Gathers `x[idx[i]]` into lane `i`.
    ///
    /// # Panics
    /// Panics when `idx.len() < W` or an index is out of range.
    #[inline(always)]
    pub fn gather(x: &[f64], idx: &[u32]) -> Self {
        Lanes(std::array::from_fn(|i| x[idx[i] as usize]))
    }

    /// Gathers `xy[2 * idx[i] + off]` into lane `i` — the strided load over
    /// a BtB-interleaved vector (`off = 0` for even slots, `1` for odd).
    ///
    /// # Panics
    /// Panics when `idx.len() < W` or a slot is out of range.
    #[inline(always)]
    pub fn gather_btb(xy: &[f64], idx: &[u32], off: usize) -> Self {
        Lanes(std::array::from_fn(|i| xy[2 * idx[i] as usize + off]))
    }

    /// Lane-wise `self += a * b` with separate multiply and add (no FMA).
    #[inline(always)]
    pub fn mul_acc(&mut self, a: Self, b: Self) {
        for i in 0..W {
            self.0[i] += a.0[i] * b.0[i];
        }
    }

    /// Pairwise reduction: adjacent lanes are summed each round, so for
    /// `W = 4` the result is exactly `(l0 + l1) + (l2 + l3)`.
    #[inline(always)]
    pub fn reduce_tree(self) -> f64 {
        debug_assert!(W.is_power_of_two(), "Lanes width must be a power of two");
        let mut buf = self.0;
        let mut w = W;
        while w > 1 {
            for i in 0..w / 2 {
                buf[i] = buf[2 * i] + buf[2 * i + 1];
            }
            w /= 2;
        }
        if W == 0 {
            0.0
        } else {
            buf[0]
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar fallbacks (always compiled; bit-identical to the unrolled kernels).
// ---------------------------------------------------------------------------

/// Scalar-fallback row dot, written against [`Lanes<4>`]. Bit-identical to
/// [`crate::spmv::row_dot_unrolled4`]: four independent accumulators, the
/// remainder folded into lane 0, `(s0 + s1) + (s2 + s3)` reduction.
#[inline(always)]
pub fn row_dot_scalar(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let len = cols.len();
    let main = len - len % 4;
    let mut acc = Lanes::<4>::zero();
    let mut j = 0;
    while j < main {
        acc.mul_acc(Lanes::load(&vals[j..j + 4]), Lanes::gather(x, &cols[j..j + 4]));
        j += 4;
    }
    while j < len {
        acc.0[0] += vals[j] * x[cols[j] as usize];
        j += 1;
    }
    acc.reduce_tree()
}

/// Scalar-fallback even-slot dot over a BtB-interleaved vector `xy[2n]`:
/// `init + Σ vals[j] · xy[2·cols[j]]`, with the same accumulator layout as
/// the head/tail stages of `fbmpk::kernel` (`init` seeds lane 0).
#[inline(always)]
pub fn btb_even_dot_scalar(cols: &[u32], vals: &[f64], xy: &[f64], init: f64) -> f64 {
    let len = cols.len();
    let main = len - len % 4;
    let mut acc = Lanes::<4>::zero();
    acc.0[0] = init;
    let mut j = 0;
    while j < main {
        acc.mul_acc(Lanes::load(&vals[j..j + 4]), Lanes::gather_btb(xy, &cols[j..j + 4], 0));
        j += 4;
    }
    while j < len {
        acc.0[0] += vals[j] * xy[2 * cols[j] as usize];
        j += 1;
    }
    acc.reduce_tree()
}

/// Scalar-fallback dual dot over a BtB-interleaved vector: returns
/// `(init_even + Σ v·xy[2c], init_odd + Σ v·xy[2c+1])`.
///
/// Mirrors the 2-way merged loop of the forward/backward sweeps: two
/// (even, odd) accumulator pairs, pairs of nonzeros processed per
/// iteration, the odd remainder folded into the first pair, and the final
/// sums `a + b` per stream.
#[inline(always)]
pub fn btb_dual_dot_scalar(
    cols: &[u32],
    vals: &[f64],
    xy: &[f64],
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    let len = cols.len();
    let main = len - len % 2;
    let mut acc_a = Lanes::<2>([init_even, init_odd]);
    let mut acc_b = Lanes::<2>::zero();
    let mut j = 0;
    while j < main {
        let c0 = 2 * cols[j] as usize;
        let c1 = 2 * cols[j + 1] as usize;
        acc_a.mul_acc(Lanes::splat(vals[j]), Lanes([xy[c0], xy[c0 + 1]]));
        acc_b.mul_acc(Lanes::splat(vals[j + 1]), Lanes([xy[c1], xy[c1 + 1]]));
        j += 2;
    }
    if j < len {
        let c = 2 * cols[j] as usize;
        acc_a.0[0] += vals[j] * xy[c];
        acc_a.0[1] += vals[j] * xy[c + 1];
    }
    (acc_a.0[0] + acc_b.0[0], acc_a.0[1] + acc_b.0[1])
}

/// Scalar-fallback dual dot over split even/odd vectors — the `SplitXy`
/// layout counterpart of [`btb_dual_dot_scalar`], same accumulator shape.
#[inline(always)]
pub fn split_dual_dot_scalar(
    cols: &[u32],
    vals: &[f64],
    xe: &[f64],
    xo: &[f64],
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    let len = cols.len();
    let main = len - len % 2;
    let mut acc_a = Lanes::<2>([init_even, init_odd]);
    let mut acc_b = Lanes::<2>::zero();
    let mut j = 0;
    while j < main {
        let c0 = cols[j] as usize;
        let c1 = cols[j + 1] as usize;
        acc_a.mul_acc(Lanes::splat(vals[j]), Lanes([xe[c0], xo[c0]]));
        acc_b.mul_acc(Lanes::splat(vals[j + 1]), Lanes([xe[c1], xo[c1]]));
        j += 2;
    }
    if j < len {
        let c = cols[j] as usize;
        acc_a.0[0] += vals[j] * xe[c];
        acc_a.0[1] += vals[j] * xo[c];
    }
    (acc_a.0[0] + acc_b.0[0], acc_a.0[1] + acc_b.0[1])
}

/// Scalar-fallback SELL chunk MAC: `acc[l] += vals[l] · x[cols[l]]` for
/// every lane `l < acc.len()`. Lane-wise, so any vector lowering of it is
/// bit-identical by construction.
#[inline(always)]
pub fn sell_mac_scalar(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64]) {
    for (l, a) in acc.iter_mut().enumerate() {
        *a += vals[l] * x[cols[l] as usize];
    }
}

// Raw-pointer twins of the scalar fallbacks. The sweep kernels read the
// `xy`/`tmp` vectors through `SharedSlice` base pointers (forming a `&[f64]`
// over storage other threads are writing would be aliasing UB), so the
// dispatchable kernels below take `*const f64` and these replicate the exact
// slice-fallback operation order through raw reads.

/// # Safety
/// `x.add(cols[j])` valid for reads for every `j`; no concurrent writer of
/// those locations in this phase (the `SharedSlice` contract).
#[inline(always)]
unsafe fn row_dot_ptr_scalar(cols: &[u32], vals: &[f64], x: *const f64, init: f64) -> f64 {
    let len = cols.len();
    let main = len - len % 4;
    let mut acc = Lanes::<4>::zero();
    acc.0[0] = init;
    let mut j = 0;
    // SAFETY: reads valid per the function contract.
    unsafe {
        while j < main {
            acc.mul_acc(
                Lanes::load(&vals[j..j + 4]),
                Lanes(std::array::from_fn(|i| *x.add(cols[j + i] as usize))),
            );
            j += 4;
        }
        while j < len {
            acc.0[0] += vals[j] * *x.add(cols[j] as usize);
            j += 1;
        }
    }
    acc.reduce_tree()
}

/// # Safety
/// As [`row_dot_ptr_scalar`] with slots `xy[2·cols[j]]`.
#[inline(always)]
unsafe fn btb_even_dot_ptr_scalar(cols: &[u32], vals: &[f64], xy: *const f64, init: f64) -> f64 {
    let len = cols.len();
    let main = len - len % 4;
    let mut acc = Lanes::<4>::zero();
    acc.0[0] = init;
    let mut j = 0;
    // SAFETY: reads valid per the function contract.
    unsafe {
        while j < main {
            acc.mul_acc(
                Lanes::load(&vals[j..j + 4]),
                Lanes(std::array::from_fn(|i| *xy.add(2 * cols[j + i] as usize))),
            );
            j += 4;
        }
        while j < len {
            acc.0[0] += vals[j] * *xy.add(2 * cols[j] as usize);
            j += 1;
        }
    }
    acc.reduce_tree()
}

/// # Safety
/// As [`row_dot_ptr_scalar`] with slots `xy[2·cols[j]]`, `xy[2·cols[j]+1]`.
#[inline(always)]
unsafe fn btb_dual_dot_ptr_scalar(
    cols: &[u32],
    vals: &[f64],
    xy: *const f64,
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    let len = cols.len();
    let main = len - len % 2;
    let mut acc_a = Lanes::<2>([init_even, init_odd]);
    let mut acc_b = Lanes::<2>::zero();
    let mut j = 0;
    // SAFETY: reads valid per the function contract.
    unsafe {
        while j < main {
            let c0 = 2 * cols[j] as usize;
            let c1 = 2 * cols[j + 1] as usize;
            acc_a.mul_acc(Lanes::splat(vals[j]), Lanes([*xy.add(c0), *xy.add(c0 + 1)]));
            acc_b.mul_acc(Lanes::splat(vals[j + 1]), Lanes([*xy.add(c1), *xy.add(c1 + 1)]));
            j += 2;
        }
        if j < len {
            let c = 2 * cols[j] as usize;
            acc_a.0[0] += vals[j] * *xy.add(c);
            acc_a.0[1] += vals[j] * *xy.add(c + 1);
        }
    }
    (acc_a.0[0] + acc_b.0[0], acc_a.0[1] + acc_b.0[1])
}

/// # Safety
/// As [`row_dot_ptr_scalar`] for both `xe` and `xo`.
#[inline(always)]
unsafe fn split_dual_dot_ptr_scalar(
    cols: &[u32],
    vals: &[f64],
    xe: *const f64,
    xo: *const f64,
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    let len = cols.len();
    let main = len - len % 2;
    let mut acc_a = Lanes::<2>([init_even, init_odd]);
    let mut acc_b = Lanes::<2>::zero();
    let mut j = 0;
    // SAFETY: reads valid per the function contract.
    unsafe {
        while j < main {
            let c0 = cols[j] as usize;
            let c1 = cols[j + 1] as usize;
            acc_a.mul_acc(Lanes::splat(vals[j]), Lanes([*xe.add(c0), *xo.add(c0)]));
            acc_b.mul_acc(Lanes::splat(vals[j + 1]), Lanes([*xe.add(c1), *xo.add(c1)]));
            j += 2;
        }
        if j < len {
            let c = cols[j] as usize;
            acc_a.0[0] += vals[j] * *xe.add(c);
            acc_a.0[1] += vals[j] * *xo.add(c);
        }
    }
    (acc_a.0[0] + acc_b.0[0], acc_a.0[1] + acc_b.0[1])
}

// ---------------------------------------------------------------------------
// AVX2 lowering (x86-64, runtime-detected).
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use core::arch::x86_64::*;

    /// 4-accumulator row dot.
    ///
    /// # Safety
    /// The CPU must support AVX2 (guaranteed when reached via
    /// [`super::detect`]). `vals.len() >= cols.len()` is asserted; gathers
    /// are bounds-checked.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_dot(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 4;
        // SAFETY: AVX2 is available per the function contract; the loadu
        // stays within `vals` because `main <= len <= vals.len()`.
        unsafe {
            let mut acc = _mm256_setzero_pd();
            let mut j = 0;
            while j < main {
                let xv = _mm256_set_pd(
                    x[cols[j + 3] as usize],
                    x[cols[j + 2] as usize],
                    x[cols[j + 1] as usize],
                    x[cols[j] as usize],
                );
                let vv = _mm256_loadu_pd(vals.as_ptr().add(j));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
                j += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            while j < len {
                lanes[0] += vals[j] * x[cols[j] as usize];
                j += 1;
            }
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
        }
    }

    /// Row dot through a raw base pointer, lane 0 seeded with `init`.
    ///
    /// # Safety
    /// AVX2 must be supported; `x.add(cols[j])` must be valid for reads for
    /// every `j`, with no concurrent writer of those locations in this
    /// phase (the `SharedSlice` contract).
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_dot_ptr(cols: &[u32], vals: &[f64], x: *const f64, init: f64) -> f64 {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 4;
        // SAFETY: AVX2 per contract; gathers valid per the pointer
        // contract; the loadu stays within `vals`.
        unsafe {
            let mut acc = _mm256_set_pd(0.0, 0.0, 0.0, init);
            let mut j = 0;
            while j < main {
                let xv = _mm256_set_pd(
                    *x.add(cols[j + 3] as usize),
                    *x.add(cols[j + 2] as usize),
                    *x.add(cols[j + 1] as usize),
                    *x.add(cols[j] as usize),
                );
                let vv = _mm256_loadu_pd(vals.as_ptr().add(j));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
                j += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            while j < len {
                lanes[0] += vals[j] * *x.add(cols[j] as usize);
                j += 1;
            }
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
        }
    }

    /// Even-slot dot over a BtB vector base pointer; lane 0 seeded with
    /// `init`.
    ///
    /// # Safety
    /// As [`row_dot_ptr`] with slots `xy[2·cols[j]]`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn btb_even_dot_ptr(cols: &[u32], vals: &[f64], xy: *const f64, init: f64) -> f64 {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 4;
        // SAFETY: see `row_dot_ptr`.
        unsafe {
            let mut acc = _mm256_set_pd(0.0, 0.0, 0.0, init);
            let mut j = 0;
            while j < main {
                let xv = _mm256_set_pd(
                    *xy.add(2 * cols[j + 3] as usize),
                    *xy.add(2 * cols[j + 2] as usize),
                    *xy.add(2 * cols[j + 1] as usize),
                    *xy.add(2 * cols[j] as usize),
                );
                let vv = _mm256_loadu_pd(vals.as_ptr().add(j));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
                j += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            while j < len {
                lanes[0] += vals[j] * *xy.add(2 * cols[j] as usize);
                j += 1;
            }
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
        }
    }

    /// Dual (even, odd) dot over a BtB vector base pointer. Lanes
    /// `[evenA, oddA, evenB, oddB]` mirror the scalar accumulator pairs
    /// exactly.
    ///
    /// # Safety
    /// As [`row_dot_ptr`] with slots `xy[2·cols[j]]` and `xy[2·cols[j]+1]`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn btb_dual_dot_ptr(
        cols: &[u32],
        vals: &[f64],
        xy: *const f64,
        init_even: f64,
        init_odd: f64,
    ) -> (f64, f64) {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 2;
        // SAFETY: see `row_dot_ptr`; the pair load is two adjacent slots.
        unsafe {
            let mut acc = _mm256_set_pd(0.0, 0.0, init_odd, init_even);
            let mut j = 0;
            while j < main {
                let p0 = _mm_loadu_pd(xy.add(2 * cols[j] as usize));
                let p1 = _mm_loadu_pd(xy.add(2 * cols[j + 1] as usize));
                let xv = _mm256_set_m128d(p1, p0);
                let vv = _mm256_set_pd(vals[j + 1], vals[j + 1], vals[j], vals[j]);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
                j += 2;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            if j < len {
                let c = 2 * cols[j] as usize;
                lanes[0] += vals[j] * *xy.add(c);
                lanes[1] += vals[j] * *xy.add(c + 1);
            }
            (lanes[0] + lanes[2], lanes[1] + lanes[3])
        }
    }

    /// Dual (even, odd) dot over split vector base pointers.
    ///
    /// # Safety
    /// As [`row_dot_ptr`] for both `xe` and `xo`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn split_dual_dot_ptr(
        cols: &[u32],
        vals: &[f64],
        xe: *const f64,
        xo: *const f64,
        init_even: f64,
        init_odd: f64,
    ) -> (f64, f64) {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 2;
        // SAFETY: see `row_dot_ptr`.
        unsafe {
            let mut acc = _mm256_set_pd(0.0, 0.0, init_odd, init_even);
            let mut j = 0;
            while j < main {
                let c0 = cols[j] as usize;
                let c1 = cols[j + 1] as usize;
                let xv = _mm256_set_pd(*xo.add(c1), *xe.add(c1), *xo.add(c0), *xe.add(c0));
                let vv = _mm256_set_pd(vals[j + 1], vals[j + 1], vals[j], vals[j]);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
                j += 2;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            if j < len {
                let c = cols[j] as usize;
                lanes[0] += vals[j] * *xe.add(c);
                lanes[1] += vals[j] * *xo.add(c);
            }
            (lanes[0] + lanes[2], lanes[1] + lanes[3])
        }
    }

    /// SELL chunk MAC over `acc.len()` lanes.
    ///
    /// # Safety
    /// The CPU must support AVX2; `vals.len() >= acc.len()` and
    /// `cols.len() >= acc.len()` are asserted, gathers bounds-checked.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sell_mac(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64]) {
        let w = acc.len();
        assert!(vals.len() >= w && cols.len() >= w);
        let main = w - w % 4;
        // SAFETY: AVX2 per contract; loads/stores stay within `vals`/`acc`
        // because `main <= w <= vals.len()` and `w == acc.len()`.
        unsafe {
            let mut i = 0;
            while i < main {
                let a = _mm256_loadu_pd(acc.as_ptr().add(i));
                let v = _mm256_loadu_pd(vals.as_ptr().add(i));
                let xv = _mm256_set_pd(
                    x[cols[i + 3] as usize],
                    x[cols[i + 2] as usize],
                    x[cols[i + 1] as usize],
                    x[cols[i] as usize],
                );
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(a, _mm256_mul_pd(v, xv)));
                i += 4;
            }
            while i < w {
                acc[i] += vals[i] * x[cols[i] as usize];
                i += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NEON lowering (aarch64; NEON is architecturally baseline there).
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use core::arch::aarch64::*;

    #[inline(always)]
    unsafe fn pair(lo: f64, hi: f64) -> float64x2_t {
        let buf = [lo, hi];
        // SAFETY: `buf` is a valid 2-element f64 array.
        unsafe { vld1q_f64(buf.as_ptr()) }
    }

    /// 4-accumulator row dot as two NEON pairs `[s0, s1]`, `[s2, s3]`.
    ///
    /// # Safety
    /// NEON is baseline on aarch64; all gathers are bounds-checked.
    #[target_feature(enable = "neon")]
    pub unsafe fn row_dot(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 4;
        // SAFETY: NEON per contract; loads built from bounds-checked reads.
        unsafe {
            let mut acc01 = vdupq_n_f64(0.0);
            let mut acc23 = vdupq_n_f64(0.0);
            let mut j = 0;
            while j < main {
                let x01 = pair(x[cols[j] as usize], x[cols[j + 1] as usize]);
                let x23 = pair(x[cols[j + 2] as usize], x[cols[j + 3] as usize]);
                let v01 = pair(vals[j], vals[j + 1]);
                let v23 = pair(vals[j + 2], vals[j + 3]);
                acc01 = vaddq_f64(acc01, vmulq_f64(v01, x01));
                acc23 = vaddq_f64(acc23, vmulq_f64(v23, x23));
                j += 4;
            }
            let mut s0 = vgetq_lane_f64::<0>(acc01);
            let s1 = vgetq_lane_f64::<1>(acc01);
            let s2 = vgetq_lane_f64::<0>(acc23);
            let s3 = vgetq_lane_f64::<1>(acc23);
            while j < len {
                s0 += vals[j] * x[cols[j] as usize];
                j += 1;
            }
            (s0 + s1) + (s2 + s3)
        }
    }

    /// Row dot through a raw base pointer, `s0` seeded with `init`.
    ///
    /// # Safety
    /// `x.add(cols[j])` must be valid for reads for every `j`, with no
    /// concurrent writer of those locations in this phase.
    #[target_feature(enable = "neon")]
    pub unsafe fn row_dot_ptr(cols: &[u32], vals: &[f64], x: *const f64, init: f64) -> f64 {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 4;
        // SAFETY: gathers valid per the pointer contract.
        unsafe {
            let mut acc01 = pair(init, 0.0);
            let mut acc23 = vdupq_n_f64(0.0);
            let mut j = 0;
            while j < main {
                let x01 = pair(*x.add(cols[j] as usize), *x.add(cols[j + 1] as usize));
                let x23 = pair(*x.add(cols[j + 2] as usize), *x.add(cols[j + 3] as usize));
                let v01 = pair(vals[j], vals[j + 1]);
                let v23 = pair(vals[j + 2], vals[j + 3]);
                acc01 = vaddq_f64(acc01, vmulq_f64(v01, x01));
                acc23 = vaddq_f64(acc23, vmulq_f64(v23, x23));
                j += 4;
            }
            let mut s0 = vgetq_lane_f64::<0>(acc01);
            let s1 = vgetq_lane_f64::<1>(acc01);
            let s2 = vgetq_lane_f64::<0>(acc23);
            let s3 = vgetq_lane_f64::<1>(acc23);
            while j < len {
                s0 += vals[j] * *x.add(cols[j] as usize);
                j += 1;
            }
            (s0 + s1) + (s2 + s3)
        }
    }

    /// Even-slot dot over a BtB vector base pointer; `s0` seeded with
    /// `init`.
    ///
    /// # Safety
    /// As [`row_dot_ptr`] with slots `xy[2·cols[j]]`.
    #[target_feature(enable = "neon")]
    pub unsafe fn btb_even_dot_ptr(cols: &[u32], vals: &[f64], xy: *const f64, init: f64) -> f64 {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 4;
        // SAFETY: see `row_dot_ptr`.
        unsafe {
            let mut acc01 = pair(init, 0.0);
            let mut acc23 = vdupq_n_f64(0.0);
            let mut j = 0;
            while j < main {
                let x01 = pair(*xy.add(2 * cols[j] as usize), *xy.add(2 * cols[j + 1] as usize));
                let x23 =
                    pair(*xy.add(2 * cols[j + 2] as usize), *xy.add(2 * cols[j + 3] as usize));
                let v01 = pair(vals[j], vals[j + 1]);
                let v23 = pair(vals[j + 2], vals[j + 3]);
                acc01 = vaddq_f64(acc01, vmulq_f64(v01, x01));
                acc23 = vaddq_f64(acc23, vmulq_f64(v23, x23));
                j += 4;
            }
            let mut s0 = vgetq_lane_f64::<0>(acc01);
            let s1 = vgetq_lane_f64::<1>(acc01);
            let s2 = vgetq_lane_f64::<0>(acc23);
            let s3 = vgetq_lane_f64::<1>(acc23);
            while j < len {
                s0 += vals[j] * *xy.add(2 * cols[j] as usize);
                j += 1;
            }
            (s0 + s1) + (s2 + s3)
        }
    }

    /// Dual (even, odd) dot over a BtB vector base pointer; accumulator
    /// pairs `[evenA, oddA]`, `[evenB, oddB]` mirror the scalar layout.
    ///
    /// # Safety
    /// As [`row_dot_ptr`] with slots `xy[2·cols[j]]` and `xy[2·cols[j]+1]`.
    #[target_feature(enable = "neon")]
    pub unsafe fn btb_dual_dot_ptr(
        cols: &[u32],
        vals: &[f64],
        xy: *const f64,
        init_even: f64,
        init_odd: f64,
    ) -> (f64, f64) {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 2;
        // SAFETY: see `row_dot_ptr`; the pair load is two adjacent slots.
        unsafe {
            let mut acc_a = pair(init_even, init_odd);
            let mut acc_b = vdupq_n_f64(0.0);
            let mut j = 0;
            while j < main {
                let p0 = vld1q_f64(xy.add(2 * cols[j] as usize));
                let p1 = vld1q_f64(xy.add(2 * cols[j + 1] as usize));
                acc_a = vaddq_f64(acc_a, vmulq_f64(vdupq_n_f64(vals[j]), p0));
                acc_b = vaddq_f64(acc_b, vmulq_f64(vdupq_n_f64(vals[j + 1]), p1));
                j += 2;
            }
            let mut even_a = vgetq_lane_f64::<0>(acc_a);
            let mut odd_a = vgetq_lane_f64::<1>(acc_a);
            let even_b = vgetq_lane_f64::<0>(acc_b);
            let odd_b = vgetq_lane_f64::<1>(acc_b);
            if j < len {
                let c = 2 * cols[j] as usize;
                even_a += vals[j] * *xy.add(c);
                odd_a += vals[j] * *xy.add(c + 1);
            }
            (even_a + even_b, odd_a + odd_b)
        }
    }

    /// Dual (even, odd) dot over split vector base pointers.
    ///
    /// # Safety
    /// As [`row_dot_ptr`] for both `xe` and `xo`.
    #[target_feature(enable = "neon")]
    pub unsafe fn split_dual_dot_ptr(
        cols: &[u32],
        vals: &[f64],
        xe: *const f64,
        xo: *const f64,
        init_even: f64,
        init_odd: f64,
    ) -> (f64, f64) {
        assert!(vals.len() >= cols.len());
        let len = cols.len();
        let main = len - len % 2;
        // SAFETY: see `row_dot_ptr`.
        unsafe {
            let mut acc_a = pair(init_even, init_odd);
            let mut acc_b = vdupq_n_f64(0.0);
            let mut j = 0;
            while j < main {
                let c0 = cols[j] as usize;
                let c1 = cols[j + 1] as usize;
                acc_a = vaddq_f64(
                    acc_a,
                    vmulq_f64(vdupq_n_f64(vals[j]), pair(*xe.add(c0), *xo.add(c0))),
                );
                acc_b = vaddq_f64(
                    acc_b,
                    vmulq_f64(vdupq_n_f64(vals[j + 1]), pair(*xe.add(c1), *xo.add(c1))),
                );
                j += 2;
            }
            let mut even_a = vgetq_lane_f64::<0>(acc_a);
            let mut odd_a = vgetq_lane_f64::<1>(acc_a);
            let even_b = vgetq_lane_f64::<0>(acc_b);
            let odd_b = vgetq_lane_f64::<1>(acc_b);
            if j < len {
                let c = cols[j] as usize;
                even_a += vals[j] * *xe.add(c);
                odd_a += vals[j] * *xo.add(c);
            }
            (even_a + even_b, odd_a + odd_b)
        }
    }

    /// SELL chunk MAC over `acc.len()` lanes, two lanes per vector op.
    ///
    /// # Safety
    /// As [`row_dot`]; `vals.len() >= acc.len()` and `cols.len() >=
    /// acc.len()` are asserted.
    #[target_feature(enable = "neon")]
    pub unsafe fn sell_mac(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64]) {
        let w = acc.len();
        assert!(vals.len() >= w && cols.len() >= w);
        let main = w - w % 2;
        // SAFETY: see `row_dot`; loads/stores stay within `acc`.
        unsafe {
            let mut i = 0;
            while i < main {
                let a = vld1q_f64(acc.as_ptr().add(i));
                let v = pair(vals[i], vals[i + 1]);
                let xv = pair(x[cols[i] as usize], x[cols[i + 1] as usize]);
                vst1q_f64(acc.as_mut_ptr().add(i), vaddq_f64(a, vmulq_f64(v, xv)));
                i += 2;
            }
            while i < w {
                acc[i] += vals[i] * x[cols[i] as usize];
                i += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatching entry points.
// ---------------------------------------------------------------------------

/// Dot product of one CSR row with `x`, lowered per [`detect`]. Bit-identical
/// to [`crate::spmv::row_dot_unrolled4`] on every path.
#[inline]
pub fn row_dot(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    match detect() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `detect` returned Avx2 only after a positive CPUID probe.
        SimdLevel::Avx2 => unsafe { avx2::row_dot(cols, vals, x) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::row_dot(cols, vals, x) },
        _ => row_dot_scalar(cols, vals, x),
    }
}

/// Row dot through a raw base pointer with lane 0 seeded by `init`, lowered
/// per [`detect`] — the sweep-kernel entry point for the head (`init = 0`)
/// and tail (`init = tmp[r] + d·x[r]`) stages, whose vectors live behind
/// `SharedSlice` and must not be reborrowed as `&[f64]`.
///
/// # Safety
/// `x.add(cols[j])` must be valid for reads for every `j`, and no other
/// thread may write any of those locations in the current synchronization
/// phase (the `SharedSlice` contract). `vals.len() >= cols.len()`.
#[inline]
pub unsafe fn row_dot_ptr(cols: &[u32], vals: &[f64], x: *const f64, init: f64) -> f64 {
    debug_assert!(vals.len() >= cols.len());
    // SAFETY: forwarded caller contract; vector arms additionally guarded by
    // `detect`'s runtime probe.
    unsafe {
        match detect() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            SimdLevel::Avx2 => avx2::row_dot_ptr(cols, vals, x, init),
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            SimdLevel::Neon => neon::row_dot_ptr(cols, vals, x, init),
            _ => row_dot_ptr_scalar(cols, vals, x, init),
        }
    }
}

/// Even-slot dot over a BtB-interleaved vector base pointer, lowered per
/// [`detect`].
///
/// # Safety
/// As [`row_dot_ptr`] with slots `xy[2·cols[j]]`.
#[inline]
pub unsafe fn btb_even_dot_ptr(cols: &[u32], vals: &[f64], xy: *const f64, init: f64) -> f64 {
    debug_assert!(vals.len() >= cols.len());
    // SAFETY: forwarded caller contract; vector arms guarded by `detect`.
    unsafe {
        match detect() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            SimdLevel::Avx2 => avx2::btb_even_dot_ptr(cols, vals, xy, init),
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            SimdLevel::Neon => neon::btb_even_dot_ptr(cols, vals, xy, init),
            _ => btb_even_dot_ptr_scalar(cols, vals, xy, init),
        }
    }
}

/// Dual (even, odd) dot over a BtB-interleaved vector base pointer, lowered
/// per [`detect`] — the merged forward/backward sweep inner loop.
///
/// # Safety
/// As [`row_dot_ptr`] with slots `xy[2·cols[j]]` and `xy[2·cols[j]+1]`.
#[inline]
pub unsafe fn btb_dual_dot_ptr(
    cols: &[u32],
    vals: &[f64],
    xy: *const f64,
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    debug_assert!(vals.len() >= cols.len());
    // SAFETY: forwarded caller contract; vector arms guarded by `detect`.
    unsafe {
        match detect() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            SimdLevel::Avx2 => avx2::btb_dual_dot_ptr(cols, vals, xy, init_even, init_odd),
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            SimdLevel::Neon => neon::btb_dual_dot_ptr(cols, vals, xy, init_even, init_odd),
            _ => btb_dual_dot_ptr_scalar(cols, vals, xy, init_even, init_odd),
        }
    }
}

/// Dual (even, odd) dot over split even/odd vector base pointers, lowered
/// per [`detect`].
///
/// # Safety
/// As [`row_dot_ptr`] for both `xe` and `xo`.
#[inline]
pub unsafe fn split_dual_dot_ptr(
    cols: &[u32],
    vals: &[f64],
    xe: *const f64,
    xo: *const f64,
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    debug_assert!(vals.len() >= cols.len());
    // SAFETY: forwarded caller contract; vector arms guarded by `detect`.
    unsafe {
        match detect() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            SimdLevel::Avx2 => avx2::split_dual_dot_ptr(cols, vals, xe, xo, init_even, init_odd),
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            SimdLevel::Neon => neon::split_dual_dot_ptr(cols, vals, xe, xo, init_even, init_odd),
            _ => split_dual_dot_ptr_scalar(cols, vals, xe, xo, init_even, init_odd),
        }
    }
}

/// Asserts every column of `cols` addresses a valid (even, odd) slot pair of
/// the BtB vector `xy`.
fn assert_btb_bounds(cols: &[u32], vals: &[f64], xy: &[f64]) {
    assert!(vals.len() >= cols.len());
    assert!(xy.len().is_multiple_of(2), "BtB vector length must be even");
    let n = xy.len() / 2;
    assert!(cols.iter().all(|&c| (c as usize) < n), "column index out of range");
}

/// Even-slot dot over a BtB-interleaved vector, lowered per [`detect`].
/// Safe slice entry point: asserts bounds, then forwards to
/// [`btb_even_dot_ptr`].
#[inline]
pub fn btb_even_dot(cols: &[u32], vals: &[f64], xy: &[f64], init: f64) -> f64 {
    assert_btb_bounds(cols, vals, xy);
    // SAFETY: all slots just asserted in range; `xy` is an exclusive slice.
    unsafe { btb_even_dot_ptr(cols, vals, xy.as_ptr(), init) }
}

/// Dual (even, odd) dot over a BtB-interleaved vector, lowered per
/// [`detect`]. Safe slice entry point: asserts bounds, then forwards to
/// [`btb_dual_dot_ptr`].
#[inline]
pub fn btb_dual_dot(
    cols: &[u32],
    vals: &[f64],
    xy: &[f64],
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    assert_btb_bounds(cols, vals, xy);
    // SAFETY: all slots just asserted in range; `xy` is an exclusive slice.
    unsafe { btb_dual_dot_ptr(cols, vals, xy.as_ptr(), init_even, init_odd) }
}

/// Dual (even, odd) dot over split even/odd vectors, lowered per [`detect`].
/// Safe slice entry point: asserts bounds, then forwards to
/// [`split_dual_dot_ptr`].
#[inline]
pub fn split_dual_dot(
    cols: &[u32],
    vals: &[f64],
    xe: &[f64],
    xo: &[f64],
    init_even: f64,
    init_odd: f64,
) -> (f64, f64) {
    assert!(vals.len() >= cols.len());
    let n = xe.len().min(xo.len());
    assert!(cols.iter().all(|&c| (c as usize) < n), "column index out of range");
    // SAFETY: all indices just asserted in range of both exclusive slices.
    unsafe { split_dual_dot_ptr(cols, vals, xe.as_ptr(), xo.as_ptr(), init_even, init_odd) }
}

/// SELL chunk MAC (`acc[l] += vals[l] · x[cols[l]]`), lowered per
/// [`detect`].
#[inline]
pub fn sell_mac(vals: &[f64], cols: &[u32], x: &[f64], acc: &mut [f64]) {
    match detect() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `detect` returned Avx2 only after a positive CPUID probe.
        SimdLevel::Avx2 => unsafe { avx2::sell_mac(vals, cols, x, acc) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::sell_mac(vals, cols, x, acc) },
        _ => sell_mac_scalar(vals, cols, x, acc),
    }
}

/// Computes `y[lo..hi] = (A x)[lo..hi]` with the dispatched row dot — the
/// SIMD counterpart of [`crate::spmv::spmv_rows_unrolled4`].
///
/// # Panics
/// Panics when the range exceeds `A.nrows()` or slice lengths are short.
pub fn spmv_rows_simd(a: &Csr, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
    assert!(lo <= hi && hi <= a.nrows(), "invalid row range {lo}..{hi}");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for r in lo..hi {
        let (s, e) = (row_ptr[r], row_ptr[r + 1]);
        y[r] = row_dot(&col_idx[s..e], &values[s..e], x);
    }
}

/// Row-split variant: rows with at most `threshold` nonzeros use the plain
/// scalar loop (bit-identical to [`crate::spmv::spmv_rows`]), longer rows
/// the dispatched row dot.
///
/// # Panics
/// Panics when the range exceeds `A.nrows()` or slice lengths are short.
pub fn spmv_rows_rowsplit_simd(
    a: &Csr,
    x: &[f64],
    y: &mut [f64],
    lo: usize,
    hi: usize,
    threshold: usize,
) {
    assert!(lo <= hi && hi <= a.nrows(), "invalid row range {lo}..{hi}");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for r in lo..hi {
        let (s, e) = (row_ptr[r], row_ptr[r + 1]);
        if e - s <= threshold {
            let mut sum = 0.0;
            for j in s..e {
                sum += values[j] * x[col_idx[j] as usize];
            }
            y[r] = sum;
        } else {
            y[r] = row_dot(&col_idx[s..e], &values[s..e], x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::row_dot_unrolled4;

    /// Deterministic pseudo-random row of `len` nonzeros over `n` columns.
    fn sample_row(len: usize, n: usize, seed: u64) -> (Vec<u32>, Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut cols: Vec<u32> = (0..len).map(|_| (next() % n as u64) as u32).collect();
        cols.sort_unstable();
        cols.dedup();
        let vals: Vec<f64> =
            (0..cols.len()).map(|_| (next() % 2000) as f64 / 997.0 - 1.0).collect();
        let x: Vec<f64> = (0..n).map(|_| (next() % 2000) as f64 / 991.0 - 1.0).collect();
        (cols, vals, x)
    }

    #[test]
    fn scalar_fallback_matches_unrolled4_exactly() {
        for len in 0..24 {
            let (cols, vals, x) = sample_row(len, 64, len as u64 + 3);
            let want = row_dot_unrolled4(&cols, &vals, &x);
            let got = row_dot_scalar(&cols, &vals, &x);
            assert_eq!(got.to_bits(), want.to_bits(), "len {len}");
        }
    }

    #[test]
    fn dispatched_row_dot_matches_unrolled4_exactly() {
        // Holds on every lowering: the vector paths replicate the scalar
        // accumulator layout, so agreement is 0 ULP, not approximate.
        for len in 0..40 {
            let (cols, vals, x) = sample_row(len, 128, len as u64 + 11);
            let want = row_dot_unrolled4(&cols, &vals, &x);
            let got = row_dot(&cols, &vals, &x);
            assert_eq!(got.to_bits(), want.to_bits(), "len {len} level {}", detect());
        }
    }

    #[test]
    fn btb_dots_match_scalar_fallback_exactly() {
        for len in 0..40 {
            let (cols, vals, x) = sample_row(len, 96, len as u64 + 29);
            // Interleave an even/odd pair stream from x.
            let xy: Vec<f64> = x.iter().flat_map(|&v| [v, v * 0.5 - 0.25]).collect();
            let (init_e, init_o) = (0.75, -1.25);
            let want_even = btb_even_dot_scalar(&cols, &vals, &xy, init_e);
            let got_even = btb_even_dot(&cols, &vals, &xy, init_e);
            assert_eq!(got_even.to_bits(), want_even.to_bits(), "even len {len}");
            let want = btb_dual_dot_scalar(&cols, &vals, &xy, init_e, init_o);
            let got = btb_dual_dot(&cols, &vals, &xy, init_e, init_o);
            assert_eq!(got.0.to_bits(), want.0.to_bits(), "dual even len {len}");
            assert_eq!(got.1.to_bits(), want.1.to_bits(), "dual odd len {len}");
            // Split layout agrees with BtB given the same logical vectors.
            let xe: Vec<f64> = xy.iter().step_by(2).copied().collect();
            let xo: Vec<f64> = xy.iter().skip(1).step_by(2).copied().collect();
            let got_split = split_dual_dot(&cols, &vals, &xe, &xo, init_e, init_o);
            assert_eq!(got_split.0.to_bits(), want.0.to_bits(), "split even len {len}");
            assert_eq!(got_split.1.to_bits(), want.1.to_bits(), "split odd len {len}");
        }
    }

    #[test]
    fn sell_mac_matches_scalar_fallback_exactly() {
        for w in 0..12 {
            let (cols, vals, x) = sample_row(w + 8, 64, w as u64 + 41);
            let w = w.min(cols.len());
            let mut acc_scalar: Vec<f64> = (0..w).map(|i| i as f64 * 0.125 - 0.5).collect();
            let mut acc_simd = acc_scalar.clone();
            sell_mac_scalar(&vals, &cols, &x, &mut acc_scalar);
            sell_mac(&vals, &cols, &x, &mut acc_simd);
            for (a, b) in acc_simd.iter().zip(&acc_scalar) {
                assert_eq!(a.to_bits(), b.to_bits(), "w {w}");
            }
        }
    }

    #[test]
    fn lanes_reduce_tree_is_fixed_shape() {
        let l = Lanes::<4>([1.0e16, 1.0, -1.0e16, 3.0]);
        // (1e16 + 1) + (-1e16 + 3) — not the left-to-right sum.
        assert_eq!(l.reduce_tree(), (1.0e16 + 1.0) + (-1.0e16 + 3.0));
        assert_eq!(Lanes::<2>([2.0, 3.0]).reduce_tree(), 5.0);
        assert_eq!(Lanes::<1>([7.0]).reduce_tree(), 7.0);
    }

    #[test]
    fn lanes_gather_btb_reads_strided_slots() {
        let xy = [10.0, -10.0, 20.0, -20.0, 30.0, -30.0];
        let idx = [2u32, 0];
        assert_eq!(Lanes::<2>::gather_btb(&xy, &idx, 0).0, [30.0, 10.0]);
        assert_eq!(Lanes::<2>::gather_btb(&xy, &idx, 1).0, [-30.0, -10.0]);
    }

    #[test]
    fn detect_is_stable_and_consistent() {
        let a = detect();
        let b = detect();
        assert_eq!(a, b);
        assert_eq!(a.is_accelerated(), a.width() > 1);
        if !cfg!(feature = "simd") {
            assert_eq!(a, SimdLevel::Scalar);
        }
    }

    #[test]
    fn spmv_rows_simd_matches_unrolled() {
        use crate::spmv::{spmv_rows_rowsplit, spmv_rows_unrolled4};
        let a = {
            let mut coo = crate::Coo::new(12, 12);
            for r in 0..12usize {
                for c in 0..=r {
                    if (r + 2 * c) % 3 != 0 {
                        coo.push(r, c, 0.1 + r as f64 * 0.3 - c as f64 * 0.07).unwrap();
                    }
                }
            }
            coo.to_csr()
        };
        let x: Vec<f64> = (0..12).map(|i| 1.0 - 0.2 * i as f64).collect();
        let mut want = vec![0.0; 12];
        spmv_rows_unrolled4(&a, &x, &mut want, 0, 12);
        let mut got = vec![0.0; 12];
        spmv_rows_simd(&a, &x, &mut got, 0, 12);
        assert_eq!(got, want);
        let mut want_rs = vec![0.0; 12];
        spmv_rows_rowsplit(&a, &x, &mut want_rs, 0, 12, 4);
        let mut got_rs = vec![0.0; 12];
        spmv_rows_rowsplit_simd(&a, &x, &mut got_rs, 0, 12, 4);
        assert_eq!(got_rs, want_rs);
    }
}
