//! Sparse triangular solves.
//!
//! The original ABMC paper (Iwashita et al., cited as refs. 23/32 by the
//! FBMPK paper) targets the parallel triangular solver inside ICCG; the
//! FBMPK paper inherits its reordering from that context (§II-C). These
//! kernels provide the substrate: forward/backward substitution with unit
//! or stored diagonals, in natural order. Parallel level-scheduled drivers
//! live in `fbmpk-solvers::iccg` (they need the `fbmpk-reorder` level
//! machinery).

use crate::Csr;

/// Solves `(L + D) x = b` where `l` holds the *strict* lower triangle and
/// `diag` the diagonal, overwriting `x` (which holds `b` on entry).
///
/// # Panics
/// Panics on length mismatches or a zero diagonal entry.
pub fn solve_lower(l: &Csr, diag: &[f64], x: &mut [f64]) {
    let n = diag.len();
    assert_eq!(l.nrows(), n);
    assert_eq!(x.len(), n);
    for r in 0..n {
        let mut s = x[r];
        for (&c, &v) in l.row_cols(r).iter().zip(l.row_vals(r)) {
            debug_assert!((c as usize) < r, "solve_lower needs a strict lower triangle");
            s -= v * x[c as usize];
        }
        assert!(diag[r] != 0.0, "zero diagonal at row {r}");
        x[r] = s / diag[r];
    }
}

/// Solves `(U + D) x = b` where `u` holds the *strict* upper triangle and
/// `diag` the diagonal, overwriting `x` (which holds `b` on entry).
///
/// # Panics
/// Panics on length mismatches or a zero diagonal entry.
pub fn solve_upper(u: &Csr, diag: &[f64], x: &mut [f64]) {
    let n = diag.len();
    assert_eq!(u.nrows(), n);
    assert_eq!(x.len(), n);
    for r in (0..n).rev() {
        let mut s = x[r];
        for (&c, &v) in u.row_cols(r).iter().zip(u.row_vals(r)) {
            debug_assert!((c as usize) > r, "solve_upper needs a strict upper triangle");
            s -= v * x[c as usize];
        }
        assert!(diag[r] != 0.0, "zero diagonal at row {r}");
        x[r] = s / diag[r];
    }
}

/// Solves `Lᵀ x = b` given the strict lower triangle `l` and diagonal, i.e.
/// an upper solve against the transposed pattern without materializing
/// `Lᵀ` (scatter form, used by IC(0) where only `L` is stored).
///
/// # Panics
/// Panics on length mismatches or a zero diagonal entry.
pub fn solve_lower_transpose(l: &Csr, diag: &[f64], x: &mut [f64]) {
    let n = diag.len();
    assert_eq!(l.nrows(), n);
    assert_eq!(x.len(), n);
    for r in (0..n).rev() {
        assert!(diag[r] != 0.0, "zero diagonal at row {r}");
        x[r] /= diag[r];
        let xr = x[r];
        // Column r of L^T is row r of L: scatter the update upward.
        for (&c, &v) in l.row_cols(r).iter().zip(l.row_vals(r)) {
            x[c as usize] -= v * xr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Csr, TriangularSplit};

    fn lower_system() -> (Csr, Vec<f64>) {
        // (L + D) from a dense lower-triangular matrix.
        let full = Csr::from_dense(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]]);
        let s = TriangularSplit::split(&full).unwrap();
        (s.lower, s.diag)
    }

    #[test]
    fn lower_solve_matches_dense() {
        let (l, d) = lower_system();
        // Solve (L+D) x = [2, 7, 32]: x = [1, 2, 3].
        let mut x = vec![2.0, 7.0, 32.0];
        solve_lower(&l, &d, &mut x);
        for (g, w) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((g - w).abs() < 1e-14);
        }
    }

    #[test]
    fn upper_solve_matches_dense() {
        let full = Csr::from_dense(&[&[2.0, 1.0, 4.0], &[0.0, 3.0, 5.0], &[0.0, 0.0, 6.0]]);
        let s = TriangularSplit::split(&full).unwrap();
        // (U+D) x = [16, 21, 18]: x = [1, 2, 3].
        let mut x = vec![16.0, 21.0, 18.0];
        solve_upper(&s.upper, &s.diag, &mut x);
        for (g, w) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((g - w).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_solve_equals_materialized_upper_solve() {
        let (l, d) = lower_system();
        // L^T + D solve via scatter must equal building U = L^T explicitly.
        let u = l.transpose();
        let b = vec![3.0, -1.0, 5.0];
        let mut x1 = b.clone();
        solve_lower_transpose(&l, &d, &mut x1);
        let mut x2 = b.clone();
        solve_upper(&u, &d, &mut x2);
        for (a, c) in x1.iter().zip(&x2) {
            assert!((a - c).abs() < 1e-14, "{x1:?} vs {x2:?}");
        }
    }

    #[test]
    fn round_trip_with_matvec() {
        // x := solve_lower(L+D, b); then (L+D) x must reproduce b.
        let (l, d) = lower_system();
        let b = vec![1.0, -2.0, 0.5];
        let mut x = b.clone();
        solve_lower(&l, &d, &mut x);
        // y = (L + D) x
        let mut y = [0.0; 3];
        for r in 0..3 {
            y[r] = d[r] * x[r];
            for (&c, &v) in l.row_cols(r).iter().zip(l.row_vals(r)) {
                y[r] += v * x[c as usize];
            }
        }
        for (g, w) in y.iter().zip(&b) {
            assert!((g - w).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn zero_diagonal_panics() {
        let (l, mut d) = lower_system();
        d[1] = 0.0;
        let mut x = vec![1.0; 3];
        solve_lower(&l, &d, &mut x);
    }
}
