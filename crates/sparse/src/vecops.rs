//! Dense-vector helpers used by the MPK kernels and solvers.
//!
//! All functions are panics-on-length-mismatch serial kernels; the solvers
//! crate builds its BLAS-1 needs out of these.

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * x + beta * y`.
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Dot product `xᵀ y`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max norm `‖x‖∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Scales `x` in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Maximum absolute difference between two vectors.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
}

/// Relative ∞-norm error `‖x − y‖∞ / max(‖y‖∞, 1)`, the comparison metric
/// used throughout the correctness tests.
pub fn rel_err_inf(x: &[f64], y: &[f64]) -> f64 {
    max_abs_diff(x, y) / norm_inf(y).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn axpby_combines() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpby(3.0, &x, 0.5, &mut y);
        assert_eq!(y, [8.0, 16.0]);
    }

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn diff_metrics() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
        // Small reference norm: denominator clamps at 1.
        assert_eq!(rel_err_inf(&[0.5], &[0.0]), 0.5);
        // Large reference norm scales.
        assert!((rel_err_inf(&[101.0], &[100.0]) - 0.01).abs() < 1e-15);
    }
}
