//! # fbmpk-sparse
//!
//! Sparse-matrix substrate for the FBMPK reproduction (Zhang et al.,
//! *Memory-aware Optimization for Sequences of Sparse Matrix-Vector
//! Multiplications*, IPDPS 2023).
//!
//! The paper's kernels operate on CSR matrices and on the triangular split
//! `A = L + D + U`. This crate provides:
//!
//! * [`coo::Coo`] — a coordinate-format builder with duplicate folding,
//! * [`csr::Csr`] — compressed sparse row storage with validated invariants,
//! * [`split`] — the `A = L + D + U` triangular split and its inverse,
//! * [`spmv`] — reference serial SpMV kernels (full matrix and row ranges),
//! * [`permute`] — permutation objects and symmetric matrix permutation,
//! * [`io`] — Matrix Market (`.mtx`) reading and writing,
//! * [`stats`] — structural statistics (Table II of the paper),
//! * [`vecops`] — dense-vector helpers used by the solvers,
//! * [`sellcs`]/[`ell`] — SELL-C-σ and ELLPACK, the vector-friendly
//!   formats the paper lists as future work,
//! * [`simd`] — the portable SIMD lane abstraction (AVX2/NEON behind the
//!   `simd` feature, bit-identical scalar fallback otherwise),
//! * [`spmm`] — sparse × multi-vector products for block Krylov methods.
//!
//! Index convention: column indices are stored as `u32` (4-byte `int`, as in
//! the C implementation the paper evaluates), row pointers as `usize`.

pub mod coo;
pub mod csr;
pub mod ell;
pub mod io;
pub mod permute;
pub mod sellcs;
pub mod simd;
pub mod split;
pub mod spmm;
pub mod spmv;
pub mod stats;
pub mod trisolve;
pub mod vecops;

pub use coo::Coo;
pub use csr::Csr;
pub use permute::Permutation;
pub use split::TriangularSplit;

/// Errors produced while constructing or validating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A row pointer array was not monotonically non-decreasing, did not
    /// start at zero, or did not end at `nnz`.
    BadRowPtr(String),
    /// A column index was out of range or unsorted within its row.
    BadColumnIndex(String),
    /// Array lengths were mutually inconsistent.
    LengthMismatch(String),
    /// An entry coordinate was outside the matrix dimensions.
    OutOfBounds { row: usize, col: usize, nrows: usize, ncols: usize },
    /// Matrix dimensions were incompatible for the requested operation.
    DimensionMismatch(String),
    /// A permutation array was not a bijection on `0..n`.
    BadPermutation(String),
    /// A Matrix Market stream could not be parsed.
    Parse(String),
    /// A Matrix Market stream had a malformed line (`line` is 1-based,
    /// counting every physical line including comments).
    ParseAt { line: usize, msg: String },
    /// A stored value was NaN or infinite where a finite one is required.
    NonFiniteValue { row: usize, col: usize },
    /// An I/O error occurred (message only, to keep the error `Clone`).
    Io(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::BadRowPtr(m) => write!(f, "invalid row_ptr: {m}"),
            SparseError::BadColumnIndex(m) => write!(f, "invalid column index: {m}"),
            SparseError::LengthMismatch(m) => write!(f, "length mismatch: {m}"),
            SparseError::OutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) outside {nrows}x{ncols} matrix")
            }
            SparseError::DimensionMismatch(m) => write!(f, "dimension mismatch: {m}"),
            SparseError::BadPermutation(m) => write!(f, "invalid permutation: {m}"),
            SparseError::Parse(m) => write!(f, "parse error: {m}"),
            SparseError::ParseAt { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::NonFiniteValue { row, col } => {
                write!(f, "non-finite value at ({row}, {col})")
            }
            SparseError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
