//! Compressed sparse row (CSR) storage.
//!
//! CSR is the format the paper's kernels and its baselines operate on
//! (Fig. 1 of the paper): `row_ptr[n+1]` row extents, `col_idx[nnz]` column
//! indices (4-byte), `values[nnz]` nonzero values. Rows are kept sorted by
//! column, which the forward/backward sweeps of FBMPK rely on.

use crate::{Result, SparseError};

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (checked by [`Csr::from_raw_parts`] / [`Csr::validate`]):
///
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == col_idx.len() == values.len()`,
/// * `row_ptr` is monotonically non-decreasing,
/// * within each row, column indices are strictly increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays, validating all invariants.
    ///
    /// # Errors
    /// Returns a [`SparseError`] describing the first violated invariant.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let m = Csr { nrows, ncols, row_ptr, col_idx, values };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix from raw arrays without validation.
    ///
    /// Intended for internal code paths that construct rows in order; debug
    /// builds still validate.
    pub(crate) fn from_raw_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        let m = Csr { nrows, ncols, row_ptr, col_idx, values };
        debug_assert!(m.validate().is_ok(), "unchecked CSR construction violated invariants");
        m
    }

    /// An `n x n` matrix with no stored entries.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Csr { nrows, ncols, row_ptr: vec![0; nrows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from a dense row-major array, storing every
    /// nonzero element. Intended for tests and examples.
    ///
    /// ```
    /// let a = fbmpk_sparse::Csr::from_dense(&[&[1.0, 0.0], &[2.0, 3.0]]);
    /// assert_eq!(a.nnz(), 3);
    /// assert_eq!(a.get(1, 0), 2.0);
    /// ```
    pub fn from_dense(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged dense input");
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Checks every structural invariant; see the type-level docs.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(SparseError::BadRowPtr(format!(
                "row_ptr has length {} for {} rows",
                self.row_ptr.len(),
                self.nrows
            )));
        }
        if self.row_ptr[0] != 0 {
            return Err(SparseError::BadRowPtr("row_ptr[0] != 0".into()));
        }
        if *self.row_ptr.last().unwrap() != self.values.len() {
            return Err(SparseError::BadRowPtr(format!(
                "row_ptr[n] = {} but nnz = {}",
                self.row_ptr.last().unwrap(),
                self.values.len()
            )));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(SparseError::LengthMismatch(format!(
                "col_idx {} vs values {}",
                self.col_idx.len(),
                self.values.len()
            )));
        }
        for r in 0..self.nrows {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if s > e {
                return Err(SparseError::BadRowPtr(format!("row {r} has negative extent")));
            }
            let mut prev: Option<u32> = None;
            for (&c, &v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                if c as usize >= self.ncols {
                    return Err(SparseError::BadColumnIndex(format!(
                        "row {r} references column {c} >= {}",
                        self.ncols
                    )));
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::BadColumnIndex(format!(
                            "row {r} columns not strictly increasing ({p} then {c})"
                        )));
                    }
                }
                if !v.is_finite() {
                    return Err(SparseError::NonFiniteValue { row: r, col: c as usize });
                }
                prev = Some(c);
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array (`nnz` entries).
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array (`nnz` entries).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// The value at `(r, c)`, or `0.0` when the entry is not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        match self.row_cols(r).binary_search(&(c as u32)) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)` in row-major
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r).iter().zip(self.row_vals(r)).map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// The transpose `Aᵀ` (also CSR; equivalently, a CSC view of `A`).
    pub fn transpose(&self) -> Csr {
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut next = row_ptr.clone();
        for r in 0..self.nrows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                let dst = next[c as usize];
                col_idx[dst] = r as u32;
                values[dst] = v;
                next[c as usize] += 1;
            }
        }
        // Row-major scatter visits rows in increasing order, so each
        // transposed row is already sorted by column.
        Csr::from_raw_parts_unchecked(self.ncols, self.nrows, row_ptr, col_idx, values)
    }

    /// Whether the matrix is numerically symmetric within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Structural asymmetry can still be numerically symmetric when
            // the extra entries are zero; fall back to a value comparison.
            return self.iter().all(|(r, c, v)| (self.get(c, r) - v).abs() <= tol)
                && t.iter().all(|(r, c, v)| (self.get(r, c) - v).abs() <= tol);
        }
        self.values.iter().zip(&t.values).all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Returns a copy with all explicitly-stored zero entries removed.
    pub fn drop_zeros(&self) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for r in 0..self.nrows {
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Converts to a dense row-major `Vec<Vec<f64>>`. Tests/examples only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, c, v) in self.iter() {
            d[r][c] += v;
        }
        d
    }

    /// The diagonal as a dense vector (missing entries are `0.0`).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (i, slot) in d.iter_mut().enumerate() {
            *slot = self.get(i, i);
        }
        d
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionMismatch`] when shapes differ.
    pub fn add(&self, other: &Csr) -> Result<Csr> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch(format!(
                "{}x{} + {}x{}",
                self.nrows, self.ncols, other.nrows, other.ncols
            )));
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        row_ptr.push(0);
        for r in 0..self.nrows {
            // Merge two sorted rows.
            let (ac, av) = (self.row_cols(r), self.row_vals(r));
            let (bc, bv) = (other.row_cols(r), other.row_vals(r));
            let (mut i, mut j) = (0, 0);
            while i < ac.len() || j < bc.len() {
                if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                    col_idx.push(ac[i]);
                    values.push(av[i]);
                    i += 1;
                } else if i >= ac.len() || bc[j] < ac[i] {
                    col_idx.push(bc[j]);
                    values.push(bv[j]);
                    j += 1;
                } else {
                    col_idx.push(ac[i]);
                    values.push(av[i] + bv[j]);
                    i += 1;
                    j += 1;
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Csr::from_raw_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, values))
    }

    /// Maximum absolute element-wise difference against `other`.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn max_abs_diff(&self, other: &Csr) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        let mut m: f64 = 0.0;
        for (r, c, v) in self.iter() {
            m = m.max((v - other.get(r, c)).abs());
        }
        for (r, c, v) in other.iter() {
            m = m.max((v - self.get(r, c)).abs());
        }
        m
    }

    /// Structural bandwidth: `max |i - j|` over stored entries.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for (r, c, _) in self.iter() {
            bw = bw.max(r.abs_diff(c));
        }
        bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4x4 example matrix from Fig. 1 of the paper.
    pub(crate) fn fig1() -> Csr {
        // [ a . b . ]        a=1 b=2
        // [ . . . . ]
        // [ c d . e ]        c=3 d=4 e=5
        // [ . . f g ]        f=6 g=7
        Csr::from_raw_parts(
            4,
            4,
            vec![0, 2, 2, 5, 7],
            vec![0, 2, 0, 1, 3, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        )
        .unwrap()
    }

    #[test]
    fn fig1_layout_matches_paper() {
        let m = fig1();
        assert_eq!(m.row_ptr(), &[0, 2, 2, 5, 7]);
        assert_eq!(m.col_idx(), &[0, 2, 0, 1, 3, 2, 3]);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn validate_rejects_bad_row_ptr() {
        let e = Csr::from_raw_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::BadRowPtr(_))));
        let e = Csr::from_raw_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::BadRowPtr(_))));
        let e = Csr::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::BadRowPtr(_))));
    }

    #[test]
    fn validate_rejects_non_finite_values() {
        let e = Csr::from_raw_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0, f64::NAN]);
        assert!(matches!(e, Err(SparseError::NonFiniteValue { row: 0, col: 1 })));
        let e = Csr::from_raw_parts(1, 1, vec![0, 1], vec![0], vec![f64::INFINITY]);
        assert!(matches!(e, Err(SparseError::NonFiniteValue { row: 0, col: 0 })));
    }

    #[test]
    fn validate_rejects_bad_columns() {
        let e = Csr::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(SparseError::BadColumnIndex(_))));
        let e = Csr::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::BadColumnIndex(_))));
        let e = Csr::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::BadColumnIndex(_))));
    }

    #[test]
    fn transpose_involution() {
        let m = fig1();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_entries() {
        let m = fig1();
        let t = m.transpose();
        for (r, c, v) in m.iter() {
            assert_eq!(t.get(c, r), v);
        }
        assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn identity_and_zero() {
        let i = Csr::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(2, 2), 1.0);
        let z = Csr::zero(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.ncols(), 5);
        z.validate().unwrap();
    }

    #[test]
    fn symmetry_detection() {
        let s = Csr::from_dense(&[&[2.0, 1.0, 0.0], &[1.0, 2.0, 3.0], &[0.0, 3.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let u = Csr::from_dense(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(!u.is_symmetric(0.0));
        let rect = Csr::zero(2, 3);
        assert!(!rect.is_symmetric(0.0));
    }

    #[test]
    fn add_merges_rows() {
        let a = Csr::from_dense(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let b = Csr::from_dense(&[&[0.0, 3.0], &[0.0, 4.0]]);
        let s = a.add(&b).unwrap();
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 1), 6.0);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Csr::zero(2, 2);
        let b = Csr::zero(3, 2);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let m = fig1();
        let d = m.to_dense();
        assert_eq!(d[2][3], 5.0);
        assert_eq!(d[1], vec![0.0; 4]);
        let rows: Vec<&[f64]> = d.iter().map(|r| r.as_slice()).collect();
        let m2 = Csr::from_dense(&rows);
        assert_eq!(m, m2);
    }

    #[test]
    fn drop_zeros_prunes() {
        let m = Csr::from_raw_parts(2, 2, vec![0, 2, 2], vec![0, 1], vec![0.0, 5.0]).unwrap();
        let p = m.drop_zeros();
        assert_eq!(p.nnz(), 1);
        assert_eq!(p.get(0, 1), 5.0);
    }

    #[test]
    fn diagonal_and_bandwidth() {
        let m = fig1();
        assert_eq!(m.diagonal(), vec![1.0, 0.0, 0.0, 7.0]);
        assert_eq!(m.bandwidth(), 2);
        assert_eq!(Csr::identity(4).bandwidth(), 0);
    }

    #[test]
    fn max_abs_diff_symmetric_in_args() {
        let a = Csr::from_dense(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let b = Csr::from_dense(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
        assert_eq!(b.max_abs_diff(&a), 2.0);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
