//! Reference SpMV kernels.
//!
//! These are the serial building blocks: the full-matrix kernel
//! (Algorithm 1's inner `SpMV` in the paper), a row-range kernel used by the
//! parallel executors to process one thread's partition, and fused variants
//! over the triangular split. Parallel drivers live in the `fbmpk` crate.

use crate::Csr;

/// Computes `y = A * x` serially.
///
/// ```
/// use fbmpk_sparse::{Csr, spmv::spmv};
/// let a = Csr::from_dense(&[&[2.0, 1.0], &[0.0, 3.0]]);
/// let mut y = vec![0.0; 2];
/// spmv(&a, &[1.0, 1.0], &mut y);
/// assert_eq!(y, vec![3.0, 3.0]);
/// ```
///
/// # Panics
/// Panics when `x.len() != A.ncols()` or `y.len() != A.nrows()`.
pub fn spmv(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length must equal ncols");
    assert_eq!(y.len(), a.nrows(), "y length must equal nrows");
    spmv_rows(a, x, y, 0, a.nrows());
}

/// Computes `y[lo..hi] = (A * x)[lo..hi]` — the row-range kernel that
/// parallel drivers call on each thread's partition.
///
/// # Panics
/// Panics when the range exceeds `A.nrows()` or slice lengths are short.
pub fn spmv_rows(a: &Csr, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
    assert!(lo <= hi && hi <= a.nrows(), "invalid row range {lo}..{hi}");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for r in lo..hi {
        let mut sum = 0.0;
        for j in row_ptr[r]..row_ptr[r + 1] {
            sum += values[j] * x[col_idx[j] as usize];
        }
        y[r] = sum;
    }
}

/// Computes `y = A * x`, allocating the output.
pub fn spmv_alloc(a: &Csr, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    spmv(a, x, &mut y);
    y
}

/// Dot product of one CSR row with `x`, 4-way unrolled.
///
/// Four independent accumulators break the serial dependence of the scalar
/// loop so the FMA/add pipeline stays full on long rows. The remainder
/// (< 4 entries) accumulates into `s0` alone, which makes rows with fewer
/// than four nonzeros bit-identical to the scalar kernel — the FBMPK core
/// relies on that for its exact-equality tests on diagonal and triangular
/// inputs.
#[inline(always)]
pub fn row_dot_unrolled4(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let len = cols.len();
    let tail = len % 4;
    let main = len - tail;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut j = 0;
    while j < main {
        s0 += vals[j] * x[cols[j] as usize];
        s1 += vals[j + 1] * x[cols[j + 1] as usize];
        s2 += vals[j + 2] * x[cols[j + 2] as usize];
        s3 += vals[j + 3] * x[cols[j + 3] as usize];
        j += 4;
    }
    while j < len {
        s0 += vals[j] * x[cols[j] as usize];
        j += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// Computes `y[lo..hi] = (A * x)[lo..hi]` with the 4-way unrolled row
/// kernel. Results for rows with fewer than four nonzeros are bit-identical
/// to [`spmv_rows`]; longer rows may differ by floating-point reassociation
/// (bounded by the usual summation error, well under `1e-12` relative for
/// the suite matrices).
///
/// # Panics
/// Panics when the range exceeds `A.nrows()` or slice lengths are short.
pub fn spmv_rows_unrolled4(a: &Csr, x: &[f64], y: &mut [f64], lo: usize, hi: usize) {
    assert!(lo <= hi && hi <= a.nrows(), "invalid row range {lo}..{hi}");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for r in lo..hi {
        let (s, e) = (row_ptr[r], row_ptr[r + 1]);
        y[r] = row_dot_unrolled4(&col_idx[s..e], &values[s..e], x);
    }
}

/// Computes `y = A * x` with the 4-way unrolled row kernel.
///
/// # Panics
/// Panics when `x.len() != A.ncols()` or `y.len() != A.nrows()`.
pub fn spmv_unrolled4(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "x length must equal ncols");
    assert_eq!(y.len(), a.nrows(), "y length must equal nrows");
    spmv_rows_unrolled4(a, x, y, 0, a.nrows());
}

/// Computes `y[lo..hi] = (A * x)[lo..hi]` with a short-row/long-row split:
/// rows with at most `threshold` nonzeros run the plain scalar loop (no
/// unroll setup overhead), longer rows run the 4-way unrolled kernel. With
/// `threshold >= 4` the short path is exact-scalar, so short rows stay
/// bit-identical to [`spmv_rows`].
///
/// # Panics
/// Panics when the range exceeds `A.nrows()` or slice lengths are short.
pub fn spmv_rows_rowsplit(
    a: &Csr,
    x: &[f64],
    y: &mut [f64],
    lo: usize,
    hi: usize,
    threshold: usize,
) {
    assert!(lo <= hi && hi <= a.nrows(), "invalid row range {lo}..{hi}");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for r in lo..hi {
        let (s, e) = (row_ptr[r], row_ptr[r + 1]);
        if e - s <= threshold {
            let mut sum = 0.0;
            for j in s..e {
                sum += values[j] * x[col_idx[j] as usize];
            }
            y[r] = sum;
        } else {
            y[r] = row_dot_unrolled4(&col_idx[s..e], &values[s..e], x);
        }
    }
}

/// Computes `y += A * x` serially (accumulating form).
pub fn spmv_acc(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for r in 0..a.nrows() {
        let mut sum = 0.0;
        for j in row_ptr[r]..row_ptr[r + 1] {
            sum += values[j] * x[col_idx[j] as usize];
        }
        y[r] += sum;
    }
}

/// Computes `y = (L + diag(d) + U) * x` from the triangular split without
/// merging the triangles — the "split SpMV" used by the head/tail stages.
pub fn spmv_split(lower: &Csr, diag: &[f64], upper: &Csr, x: &[f64], y: &mut [f64]) {
    let n = diag.len();
    assert_eq!(lower.nrows(), n);
    assert_eq!(upper.nrows(), n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    for r in 0..n {
        let mut sum = diag[r] * x[r];
        for (&c, &v) in lower.row_cols(r).iter().zip(lower.row_vals(r)) {
            sum += v * x[c as usize];
        }
        for (&c, &v) in upper.row_cols(r).iter().zip(upper.row_vals(r)) {
            sum += v * x[c as usize];
        }
        y[r] = sum;
    }
}

/// Computes `y = Aᵀ * x` without materializing the transpose (scatter form).
pub fn spmv_transpose(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.nrows(), "x length must equal nrows for A^T x");
    assert_eq!(y.len(), a.ncols(), "y length must equal ncols for A^T x");
    y.fill(0.0);
    for (r, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            y[c as usize] += v * xv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TriangularSplit;

    fn sample() -> Csr {
        Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 0.0, 3.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[2.0, 0.0, 1.0, 6.0],
        ])
    }

    fn dense_mv(a: &Csr, x: &[f64]) -> Vec<f64> {
        a.to_dense().iter().map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut y = vec![0.0; 4];
        spmv(&a, &x, &mut y);
        assert_eq!(y, dense_mv(&a, &x));
    }

    #[test]
    fn spmv_rows_partial_range() {
        let a = sample();
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut y = vec![-9.0; 4];
        spmv_rows(&a, &x, &mut y, 1, 3);
        let full = dense_mv(&a, &x);
        assert_eq!(y[1], full[1]);
        assert_eq!(y[2], full[2]);
        // Rows outside the range untouched.
        assert_eq!(y[0], -9.0);
        assert_eq!(y[3], -9.0);
    }

    #[test]
    fn spmv_acc_accumulates() {
        let a = sample();
        let x = [1.0, 0.0, 0.0, 0.0];
        let mut y = vec![10.0; 4];
        spmv_acc(&a, &x, &mut y);
        assert_eq!(y, vec![14.0, 11.0, 10.0, 12.0]);
    }

    #[test]
    fn spmv_split_equals_full() {
        let a = sample();
        let s = TriangularSplit::split(&a).unwrap();
        let x = [2.0, -1.0, 4.0, 0.5];
        let mut y1 = vec![0.0; 4];
        let mut y2 = vec![0.0; 4];
        spmv(&a, &x, &mut y1);
        spmv_split(&s.lower, &s.diag, &s.upper, &x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn spmv_transpose_matches_materialized() {
        let a = Csr::from_dense(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 4.0]]);
        let x = [1.0, -1.0];
        let mut y = vec![0.0; 3];
        spmv_transpose(&a, &x, &mut y);
        let t = a.transpose();
        let mut y2 = vec![0.0; 3];
        spmv(&t, &x, &mut y2);
        assert_eq!(y, y2);
    }

    #[test]
    fn empty_rows_produce_zero() {
        let a = Csr::zero(3, 3);
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![5.0; 3];
        spmv(&a, &x, &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn spmv_checks_x_len() {
        let a = sample();
        let mut y = vec![0.0; 4];
        spmv(&a, &[1.0], &mut y);
    }

    #[test]
    fn spmv_alloc_allocates_correctly() {
        let a = sample();
        let x = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(spmv_alloc(&a, &x), dense_mv(&a, &x));
    }

    /// A wide matrix with row lengths 0..=13 so the unrolled kernel
    /// exercises every remainder class and several full 4-chunks.
    fn varied_rows() -> (Csr, Vec<f64>) {
        let n = 14;
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
        let mut v = 0.31f64;
        for (r, row) in rows.iter_mut().enumerate() {
            for cell in row.iter_mut().take(r) {
                v = (v * 1.7 + 0.13) % 1.0;
                *cell = v + 0.1;
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x: Vec<f64> = (0..n).map(|i| 0.5 - 0.07 * i as f64).collect();
        (Csr::from_dense(&refs), x)
    }

    #[test]
    fn unrolled_matches_scalar_all_remainders() {
        let (a, x) = varied_rows();
        let mut y_scalar = vec![0.0; a.nrows()];
        let mut y_unrolled = vec![0.0; a.nrows()];
        spmv(&a, &x, &mut y_scalar);
        spmv_unrolled4(&a, &x, &mut y_unrolled);
        for (r, (s, u)) in y_scalar.iter().zip(&y_unrolled).enumerate() {
            let scale = s.abs().max(1.0);
            assert!((s - u).abs() <= 1e-13 * scale, "row {r}: {s} vs {u}");
        }
    }

    #[test]
    fn unrolled_bit_exact_for_short_rows() {
        // Rows with < 4 nonzeros must match the scalar kernel exactly.
        let a = Csr::from_dense(&[
            &[1.5, 0.0, 0.0, 0.0],
            &[0.3, 2.5, 0.0, 0.0],
            &[0.1, 0.2, 3.5, 0.0],
            &[0.0, 0.0, 0.0, 4.5],
        ]);
        let x = [0.7, -0.3, 1.9, 0.11];
        let mut y_scalar = vec![0.0; 4];
        let mut y_unrolled = vec![0.0; 4];
        spmv(&a, &x, &mut y_scalar);
        spmv_unrolled4(&a, &x, &mut y_unrolled);
        assert_eq!(y_scalar, y_unrolled);
    }

    #[test]
    fn rowsplit_matches_scalar() {
        let (a, x) = varied_rows();
        let mut y_scalar = vec![0.0; a.nrows()];
        spmv(&a, &x, &mut y_scalar);
        for threshold in [0, 4, 8, 100] {
            let mut y_split = vec![0.0; a.nrows()];
            spmv_rows_rowsplit(&a, &x, &mut y_split, 0, a.nrows(), threshold);
            for (r, (s, u)) in y_scalar.iter().zip(&y_split).enumerate() {
                let scale = s.abs().max(1.0);
                assert!(
                    (s - u).abs() <= 1e-13 * scale,
                    "threshold {threshold} row {r}: {s} vs {u}"
                );
            }
        }
    }

    #[test]
    fn unrolled_partial_range_untouched_outside() {
        let a = sample();
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut y = vec![-9.0; 4];
        spmv_rows_unrolled4(&a, &x, &mut y, 1, 3);
        assert_eq!(y[0], -9.0);
        assert_eq!(y[3], -9.0);
        let full = dense_mv(&a, &x);
        let scale = full[1].abs().max(1.0);
        assert!((y[1] - full[1]).abs() <= 1e-13 * scale);
    }
}
