//! The triangular split `A = L + D + U` (paper §III-A).
//!
//! FBMPK's central storage decision: the strict lower triangle `L` and strict
//! upper triangle `U` are kept as separate CSR matrices, the diagonal `D` as
//! a dense vector `d`. Table IV of the paper shows the combined footprint is
//! almost identical to plain CSR: `col_idx` and `values` shrink by `n`
//! entries each (the diagonal moves to `d`), while `row_ptr` doubles.

use crate::{Csr, Result, SparseError};

/// The split `A = L + D + U` of a square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TriangularSplit {
    /// Strict lower triangle (entries with `col < row`).
    pub lower: Csr,
    /// Diagonal entries as a dense vector; positions without a stored
    /// diagonal entry hold `0.0`.
    pub diag: Vec<f64>,
    /// Strict upper triangle (entries with `col > row`).
    pub upper: Csr,
}

impl TriangularSplit {
    /// Splits a square matrix into `L + D + U`.
    ///
    /// ```
    /// use fbmpk_sparse::{Csr, TriangularSplit};
    /// let a = Csr::from_dense(&[&[4.0, 1.0], &[2.0, 5.0]]);
    /// let s = TriangularSplit::split(&a).unwrap();
    /// assert_eq!(s.diag, vec![4.0, 5.0]);
    /// assert_eq!(s.lower.get(1, 0), 2.0);
    /// assert_eq!(s.upper.get(0, 1), 1.0);
    /// assert_eq!(s.merge(), a); // exact round-trip
    /// ```
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionMismatch`] for non-square input.
    #[allow(clippy::needless_range_loop)] // r indexes the matrix rows and diag together
    pub fn split(a: &Csr) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch(format!(
                "triangular split requires a square matrix, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        let n = a.nrows();
        let mut diag = vec![0.0f64; n];
        let mut l_ptr = Vec::with_capacity(n + 1);
        let mut u_ptr = Vec::with_capacity(n + 1);
        let mut l_cols = Vec::new();
        let mut l_vals = Vec::new();
        let mut u_cols = Vec::new();
        let mut u_vals = Vec::new();
        l_ptr.push(0);
        u_ptr.push(0);
        for r in 0..n {
            for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                match (c as usize).cmp(&r) {
                    std::cmp::Ordering::Less => {
                        l_cols.push(c);
                        l_vals.push(v);
                    }
                    std::cmp::Ordering::Equal => diag[r] = v,
                    std::cmp::Ordering::Greater => {
                        u_cols.push(c);
                        u_vals.push(v);
                    }
                }
            }
            l_ptr.push(l_cols.len());
            u_ptr.push(u_cols.len());
        }
        let lower = Csr::from_raw_parts(n, n, l_ptr, l_cols, l_vals)?;
        let upper = Csr::from_raw_parts(n, n, u_ptr, u_cols, u_vals)?;
        Ok(TriangularSplit { lower, diag, upper })
    }

    /// Matrix dimension `n`.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Reassembles `L + D + U` into a single CSR matrix.
    ///
    /// Zero diagonal entries are not materialized, so
    /// `merge(split(A)) == A.drop_zeros()` holds when `A` stores a zero
    /// diagonal explicitly, and `merge(split(A)) == A` otherwise.
    pub fn merge(&self) -> Csr {
        let n = self.n();
        let nnz =
            self.lower.nnz() + self.upper.nnz() + self.diag.iter().filter(|&&d| d != 0.0).count();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for r in 0..n {
            for (&c, &v) in self.lower.row_cols(r).iter().zip(self.lower.row_vals(r)) {
                col_idx.push(c);
                values.push(v);
            }
            if self.diag[r] != 0.0 {
                col_idx.push(r as u32);
                values.push(self.diag[r]);
            }
            for (&c, &v) in self.upper.row_cols(r).iter().zip(self.upper.row_vals(r)) {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw_parts(n, n, row_ptr, col_idx, values)
            .expect("merge of valid triangles is valid")
    }

    /// Storage footprint in bytes of the split representation
    /// (`col_idx` as 4-byte ints, `values`/`d` as 8-byte floats, `row_ptr`
    /// as 8-byte ints) — the "L+U+d" row of Table IV.
    pub fn storage_bytes(&self) -> usize {
        let n = self.n();
        let nnz_off = self.lower.nnz() + self.upper.nnz();
        4 * nnz_off + 8 * nnz_off + 8 * n + 2 * 8 * (n + 1)
    }

    /// Storage footprint in bytes of the equivalent plain-CSR matrix with
    /// `nnz` stored entries — the "CSR" row of Table IV.
    pub fn csr_storage_bytes(n: usize, nnz: usize) -> usize {
        4 * nnz + 8 * nnz + 8 * (n + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 0.0, 3.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[2.0, 0.0, 1.0, 6.0],
        ])
    }

    #[test]
    fn split_partitions_entries() {
        let a = sample();
        let s = TriangularSplit::split(&a).unwrap();
        assert_eq!(s.diag, vec![4.0, 0.0, 5.0, 6.0]);
        // Strictly lower entries only.
        for (r, c, _) in s.lower.iter() {
            assert!(c < r);
        }
        for (r, c, _) in s.upper.iter() {
            assert!(c > r);
        }
        assert_eq!(
            s.lower.nnz() + s.upper.nnz() + s.diag.iter().filter(|&&d| d != 0.0).count(),
            a.nnz()
        );
    }

    #[test]
    fn merge_round_trips() {
        let a = sample();
        let s = TriangularSplit::split(&a).unwrap();
        assert_eq!(s.merge(), a);
    }

    #[test]
    fn merge_round_trips_no_diagonal() {
        // Matrix with an entirely empty diagonal.
        let a = Csr::from_dense(&[&[0.0, 2.0], &[3.0, 0.0]]);
        let s = TriangularSplit::split(&a).unwrap();
        assert_eq!(s.diag, vec![0.0, 0.0]);
        assert_eq!(s.merge(), a);
    }

    #[test]
    fn split_rejects_rectangular() {
        let a = Csr::zero(2, 3);
        assert!(TriangularSplit::split(&a).is_err());
    }

    #[test]
    fn table4_storage_nearly_equal() {
        // Table IV: for nnz >> n the two layouts have almost the same size;
        // the split trades n (4+8)-byte off-diagonal slots for an n-entry
        // f64 vector plus one extra row_ptr array.
        let a = sample();
        let s = TriangularSplit::split(&a).unwrap();
        let split_bytes = s.storage_bytes();
        let csr_bytes = TriangularSplit::csr_storage_bytes(a.nrows(), a.nnz());
        let n = a.nrows();
        // Exact bookkeeping identity derived from Table IV (for a full
        // diagonal): split = csr - 12*n_diag + 8n + 8(n+1).
        // All stored diagonal entries moved out of the csr arrays.
        let n_diag = s.diag.iter().filter(|&&d| d != 0.0).count();
        let moved = a.nnz() - s.lower.nnz() - s.upper.nnz();
        assert_eq!(moved, n_diag);
        assert_eq!(split_bytes, csr_bytes - 12 * moved + 8 * n + 8 * (n + 1));
    }

    #[test]
    fn split_of_identity_is_diag_only() {
        let s = TriangularSplit::split(&Csr::identity(5)).unwrap();
        assert_eq!(s.lower.nnz(), 0);
        assert_eq!(s.upper.nnz(), 0);
        assert_eq!(s.diag, vec![1.0; 5]);
    }

    #[test]
    fn n_reports_dimension() {
        let s = TriangularSplit::split(&sample()).unwrap();
        assert_eq!(s.n(), 4);
    }
}
