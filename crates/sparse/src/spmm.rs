//! Sparse matrix × multiple vectors (SpMM).
//!
//! MPK consumers frequently advance a *block* of vectors (block Krylov,
//! subspace iteration — e.g. the ChASE eigensolver the paper cites). SpMM
//! amortizes each matrix element over `m` vectors: one read of `A[r, c]`
//! feeds `m` multiply-adds, so matrix traffic per vector drops by `m` —
//! the same economics FBMPK exploits across *iterations*, here exploited
//! across *right-hand sides*. Vectors are stored row-major
//! (`x[c * m + v]`), the block analog of the paper's back-to-back layout:
//! all `m` operands gathered per column share cache lines.

use crate::Csr;

/// A dense block of `m` vectors of length `n`, stored row-major
/// (`data[i * m + v]` = component `i` of vector `v`) — the interleaved
/// layout that keeps per-row gathers contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVec {
    data: Vec<f64>,
    n: usize,
    m: usize,
}

impl MultiVec {
    /// Zero block of `m` vectors of length `n`.
    pub fn zeros(n: usize, m: usize) -> Self {
        assert!(m > 0, "need at least one vector");
        MultiVec { data: vec![0.0; n * m], n, m }
    }

    /// Builds from column vectors.
    ///
    /// # Panics
    /// Panics when vectors are empty or ragged.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        assert!(!cols.is_empty(), "need at least one vector");
        let n = cols[0].len();
        let m = cols.len();
        let mut mv = MultiVec::zeros(n, m);
        for (v, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), n, "ragged vector block");
            for (i, &x) in col.iter().enumerate() {
                mv.data[i * m + v] = x;
            }
        }
        mv
    }

    /// Extracts vector `v` as a contiguous `Vec`.
    pub fn column(&self, v: usize) -> Vec<f64> {
        assert!(v < self.m);
        (0..self.n).map(|i| self.data[i * self.m + v]).collect()
    }

    /// Vector length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of vectors.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Component `i` of vector `v`.
    #[inline]
    pub fn get(&self, i: usize, v: usize) -> f64 {
        self.data[i * self.m + v]
    }

    /// Raw interleaved storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Computes `Y = A X` for a block of interleaved vectors.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn spmm(a: &Csr, x: &MultiVec, y: &mut MultiVec) {
    assert_eq!(x.n, a.ncols(), "X row count must equal ncols");
    assert_eq!(y.n, a.nrows(), "Y row count must equal nrows");
    assert_eq!(x.m, y.m, "operand blocks differ in width");
    let m = x.m;
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    // Small fixed-size accumulator for common block widths keeps the inner
    // loop register-resident.
    let mut acc = vec![0.0f64; m];
    for r in 0..a.nrows() {
        acc.fill(0.0);
        for j in row_ptr[r]..row_ptr[r + 1] {
            let v = values[j];
            let base = col_idx[j] as usize * m;
            for (w, a) in acc.iter_mut().enumerate() {
                *a += v * x.data[base + w];
            }
        }
        y.data[r * m..(r + 1) * m].copy_from_slice(&acc);
    }
}

/// Computes the block power `Aᵏ X` by repeated SpMM (each step reads `A`
/// once for all `m` vectors — `m`-fold matrix-traffic amortization over
/// running the scalar MPK per column).
pub fn block_power(a: &Csr, x: &MultiVec, k: usize) -> MultiVec {
    assert_eq!(a.nrows(), a.ncols(), "block power needs a square matrix");
    let mut cur = x.clone();
    let mut nxt = MultiVec::zeros(x.n, x.m);
    for _ in 0..k {
        spmm(a, &cur, &mut nxt);
        std::mem::swap(&mut cur, &mut nxt);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv_alloc;

    fn sample() -> Csr {
        Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 3.0, 3.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[2.0, 0.0, 1.0, 6.0],
        ])
    }

    #[test]
    fn spmm_matches_per_vector_spmv() {
        let a = sample();
        let cols =
            vec![vec![1.0, 0.0, -1.0, 2.0], vec![0.5, 0.5, 0.5, 0.5], vec![3.0, -2.0, 1.0, 0.0]];
        let x = MultiVec::from_columns(&cols);
        let mut y = MultiVec::zeros(4, 3);
        spmm(&a, &x, &mut y);
        for (v, col) in cols.iter().enumerate() {
            assert_eq!(y.column(v), spmv_alloc(&a, col), "vector {v}");
        }
    }

    #[test]
    fn block_power_matches_scalar_powers() {
        let a = sample();
        let cols = vec![vec![1.0, 1.0, 1.0, 1.0], vec![1.0, -1.0, 1.0, -1.0]];
        let x = MultiVec::from_columns(&cols);
        let y = block_power(&a, &x, 3);
        for (v, col) in cols.iter().enumerate() {
            let mut want = col.clone();
            for _ in 0..3 {
                want = spmv_alloc(&a, &want);
            }
            let got = y.column(v);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12 * w.abs().max(1.0), "vector {v}");
            }
        }
    }

    #[test]
    fn interleaved_layout_round_trips() {
        let cols = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mv = MultiVec::from_columns(&cols);
        assert_eq!(mv.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(mv.get(1, 0), 2.0);
        assert_eq!(mv.get(0, 1), 3.0);
        assert_eq!(mv.column(1), vec![3.0, 4.0]);
    }

    #[test]
    fn k_zero_block_power_is_identity() {
        let a = sample();
        let x = MultiVec::from_columns(&[vec![1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(block_power(&a, &x, 0), x);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_block_rejected() {
        MultiVec::from_columns(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
