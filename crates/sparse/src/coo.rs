//! Coordinate-format (triplet) sparse matrix builder.
//!
//! [`Coo`] is the mutable construction format: entries are appended in any
//! order, duplicates are folded by summation, and the result is converted to
//! [`crate::Csr`] for computation. All generators in `fbmpk-gen` and the
//! Matrix Market reader build through this type.

use crate::{Result, SparseError};

/// A sparse matrix in coordinate (triplet) format.
///
/// Entries may appear in any order and may repeat; [`Coo::to_csr`] sorts and
/// folds duplicates by summation, matching the usual Matrix Market
/// "assembled by accumulation" semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl Coo {
    /// Creates an empty `nrows x ncols` triplet matrix.
    ///
    /// # Panics
    /// Panics if a dimension exceeds `u32::MAX`, the index width used by the
    /// storage formats in this crate.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "matrix dimensions must fit in u32 indices"
        );
        Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty triplet matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut c = Coo::new(nrows, ncols);
        c.rows.reserve(cap);
        c.cols.reserve(cap);
        c.vals.reserve(cap);
        c
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate folding).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether no triplets are stored.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Appends the entry `A[row, col] += val`.
    ///
    /// # Errors
    /// Returns [`SparseError::OutOfBounds`] when the coordinate lies outside
    /// the matrix.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::OutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
        Ok(())
    }

    /// Appends an entry without bounds checking in release builds.
    ///
    /// Intended for generators that prove their own bounds; still
    /// `debug_assert`s in test builds.
    pub fn push_unchecked(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
    }

    /// Appends `A[row, col] += val` and, when `row != col`, the mirrored
    /// entry `A[col, row] += val`. Convenience for symmetric assembly.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        self.push(row, col, val)?;
        if row != col {
            self.push(col, row, val)?;
        }
        Ok(())
    }

    /// Iterates over the raw (unfolded) triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR, sorting entries and folding duplicates by summation.
    ///
    /// Entries whose folded value is exactly `0.0` are retained (explicit
    /// zeros are meaningful for structural analyses such as reordering);
    /// use [`crate::Csr::drop_zeros`] to prune them.
    pub fn to_csr(&self) -> crate::Csr {
        let nnz = self.vals.len();
        // Counting sort by row: one pass to size rows, one pass to scatter.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let row_start = counts.clone();
        let mut cols = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        {
            let mut next = row_start.clone();
            for i in 0..nnz {
                let r = self.rows[i] as usize;
                let dst = next[r];
                cols[dst] = self.cols[i];
                vals[dst] = self.vals[i];
                next[r] += 1;
            }
        }
        // Sort within each row by column and fold duplicates.
        let mut out_row_ptr = vec![0usize; self.nrows + 1];
        let mut out_cols: Vec<u32> = Vec::with_capacity(nnz);
        let mut out_vals: Vec<f64> = Vec::with_capacity(nnz);
        let mut idx: Vec<u32> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        for r in 0..self.nrows {
            let (s, e) = (row_start[r], row_start[r + 1]);
            idx.clear();
            idx.extend(cols[s..e].iter().copied());
            // Stable sort: duplicates fold in insertion order, so mirrored
            // entries in symmetric assembly sum in the same order and stay
            // bit-identical across the diagonal. (Buffers are hoisted out
            // of the loop; this runs once per row of every generated
            // matrix.)
            order.clear();
            order.extend(0..e - s);
            order.sort_by_key(|&i| idx[i]);
            let mut last_col: Option<u32> = None;
            for &i in &order {
                let c = cols[s + i];
                let v = vals[s + i];
                if last_col == Some(c) {
                    *out_vals.last_mut().unwrap() += v;
                } else {
                    out_cols.push(c);
                    out_vals.push(v);
                    last_col = Some(c);
                }
            }
            out_row_ptr[r + 1] = out_cols.len();
        }
        crate::Csr::from_raw_parts(self.nrows, self.ncols, out_row_ptr, out_cols, out_vals)
            .expect("Coo::to_csr produced invalid CSR (internal bug)")
    }
}

impl FromIterator<(usize, usize, f64)> for Coo {
    /// Collects triplets, growing the dimensions to fit the largest index.
    fn from_iter<T: IntoIterator<Item = (usize, usize, f64)>>(iter: T) -> Self {
        let trip: Vec<_> = iter.into_iter().collect();
        let nrows = trip.iter().map(|t| t.0 + 1).max().unwrap_or(0);
        let ncols = trip.iter().map(|t| t.1 + 1).max().unwrap_or(0);
        let mut coo = Coo::with_capacity(nrows, ncols, trip.len());
        for (r, c, v) in trip {
            coo.push(r, c, v).expect("indices bound dimensions by construction");
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut c = Coo::new(3, 3);
        assert!(c.is_empty());
        c.push(0, 0, 1.0).unwrap();
        c.push(2, 1, -2.0).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 3);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut c = Coo::new(2, 2);
        assert!(matches!(c.push(2, 0, 1.0), Err(SparseError::OutOfBounds { .. })));
        assert!(matches!(c.push(0, 5, 1.0), Err(SparseError::OutOfBounds { .. })));
    }

    #[test]
    fn duplicates_fold_by_sum() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.5).unwrap();
        c.push(0, 1, 2.5).unwrap();
        c.push(1, 0, -1.0).unwrap();
        let m = c.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.get(1, 0), -1.0);
    }

    #[test]
    fn unsorted_input_sorted_in_csr() {
        let mut c = Coo::new(2, 4);
        c.push(0, 3, 3.0).unwrap();
        c.push(0, 0, 1.0).unwrap();
        c.push(0, 2, 2.0).unwrap();
        let m = c.to_csr();
        assert_eq!(m.row_cols(0), &[0, 2, 3]);
        assert_eq!(m.row_vals(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut c = Coo::new(3, 3);
        c.push_sym(0, 2, 5.0).unwrap();
        c.push_sym(1, 1, 7.0).unwrap();
        let m = c.to_csr();
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn from_iterator_sizes_to_max_index() {
        let coo: Coo = vec![(0usize, 0usize, 1.0), (4, 2, 2.0)].into_iter().collect();
        assert_eq!(coo.nrows(), 5);
        assert_eq!(coo.ncols(), 3);
    }

    #[test]
    fn empty_matrix_to_csr() {
        let c = Coo::new(3, 3);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 3);
    }

    #[test]
    fn explicit_zero_retained() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 0.0).unwrap();
        let m = c.to_csr();
        assert_eq!(m.nnz(), 1);
    }
}
