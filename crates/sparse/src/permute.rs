//! Row/column permutations and symmetric matrix reordering.
//!
//! Reordering methods (ABMC, RCM — paper §II-C, §III-D) produce a
//! [`Permutation`] that is applied symmetrically: `B = P A Pᵀ`, together
//! with `Px` for vectors, so that `B (Px) = P (Ax)` — the identity the
//! round-trip tests verify.

use crate::{Csr, Result, SparseError};

/// A permutation of `0..n`.
///
/// Stored as `new_of_old`: `new_of_old[i]` is the new index of old index
/// `i`. [`Permutation::order`] gives the inverse view (`order[k]` = old
/// index placed at new position `k`), which is how reordering algorithms
/// naturally emit their result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation { new_of_old: (0..n as u32).collect() }
    }

    /// Builds from the `new_of_old` mapping, validating bijectivity.
    ///
    /// # Errors
    /// Returns [`SparseError::BadPermutation`] when the array is not a
    /// bijection on `0..n`.
    pub fn from_new_of_old(new_of_old: Vec<u32>) -> Result<Self> {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &p in &new_of_old {
            let p = p as usize;
            if p >= n {
                return Err(SparseError::BadPermutation(format!("index {p} >= {n}")));
            }
            if seen[p] {
                return Err(SparseError::BadPermutation(format!("index {p} repeated")));
            }
            seen[p] = true;
        }
        Ok(Permutation { new_of_old })
    }

    /// Builds from an ordering: `order[k]` is the old index placed at new
    /// position `k` (the natural output of BFS/coloring-based reorderers).
    ///
    /// # Errors
    /// Returns [`SparseError::BadPermutation`] when `order` is not a
    /// bijection on `0..n`.
    pub fn from_order(order: &[u32]) -> Result<Self> {
        let n = order.len();
        let mut new_of_old = vec![u32::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            let old = old as usize;
            if old >= n {
                return Err(SparseError::BadPermutation(format!("index {old} >= {n}")));
            }
            if new_of_old[old] != u32::MAX {
                return Err(SparseError::BadPermutation(format!("index {old} repeated")));
            }
            new_of_old[old] = new as u32;
        }
        Ok(Permutation { new_of_old })
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_of_old.iter().enumerate().all(|(i, &p)| i as u32 == p)
    }

    /// New index of old index `i`.
    #[inline]
    pub fn new_of(&self, i: usize) -> usize {
        self.new_of_old[i] as usize
    }

    /// The raw `new_of_old` mapping.
    pub fn new_of_old(&self) -> &[u32] {
        &self.new_of_old
    }

    /// The ordering view: `order[k]` = old index at new position `k`.
    pub fn order(&self) -> Vec<u32> {
        let mut order = vec![0u32; self.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            order[new as usize] = old as u32;
        }
        order
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { new_of_old: self.order() }
    }

    /// Composition `other ∘ self`: first apply `self`, then `other`.
    ///
    /// # Panics
    /// Panics when domain sizes differ.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "composing permutations of different sizes");
        Permutation {
            new_of_old: self.new_of_old.iter().map(|&mid| other.new_of_old[mid as usize]).collect(),
        }
    }

    /// Applies to a vector: `out[new_of_old[i]] = x[i]` (i.e. `out = Px`).
    pub fn apply_vec(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len());
        assert_eq!(out.len(), self.len());
        for (i, &v) in x.iter().enumerate() {
            out[self.new_of_old[i] as usize] = v;
        }
    }

    /// Applies to a vector, allocating the output.
    pub fn apply_vec_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply_vec(x, &mut out);
        out
    }

    /// Inverse application: `out[i] = y[new_of_old[i]]` (i.e. `out = P⁻¹y`).
    pub fn unapply_vec(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.len());
        assert_eq!(out.len(), self.len());
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = y[self.new_of_old[i] as usize];
        }
    }

    /// Inverse application, allocating the output.
    pub fn unapply_vec_alloc(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; y.len()];
        self.unapply_vec(y, &mut out);
        out
    }

    /// Symmetric permutation `B = P A Pᵀ`: entry `A[i,j]` moves to
    /// `B[p(i), p(j)]`. This preserves SpMV semantics:
    /// `B (Px) = P (A x)`.
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionMismatch`] for non-square input or a
    /// size mismatch with the permutation.
    pub fn permute_symmetric(&self, a: &Csr) -> Result<Csr> {
        let n = self.len();
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch(
                "symmetric permutation needs square matrix".into(),
            ));
        }
        if a.nrows() != n {
            return Err(SparseError::DimensionMismatch(format!(
                "matrix is {}x{} but permutation has size {n}",
                a.nrows(),
                a.ncols()
            )));
        }
        let order = self.order();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        row_ptr.push(0);
        let mut rowbuf: Vec<(u32, f64)> = Vec::new();
        for &old_r in &order {
            let old_r = old_r as usize;
            rowbuf.clear();
            for (&c, &v) in a.row_cols(old_r).iter().zip(a.row_vals(old_r)) {
                rowbuf.push((self.new_of_old[c as usize], v));
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &rowbuf {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw_parts(n, n, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.apply_vec_alloc(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bad_permutations_rejected() {
        assert!(Permutation::from_new_of_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_of_old(vec![0, 5]).is_err());
        assert!(Permutation::from_order(&[1, 1]).is_err());
        assert!(Permutation::from_order(&[3, 0]).is_err());
    }

    #[test]
    fn order_and_new_of_old_are_inverse_views() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let order = p.order();
        assert_eq!(order, vec![1, 2, 0]);
        let q = Permutation::from_order(&order).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn inverse_round_trip_on_vectors() {
        let p = Permutation::from_new_of_old(vec![3, 1, 0, 2]).unwrap();
        let x = [10.0, 20.0, 30.0, 40.0];
        let px = p.apply_vec_alloc(&x);
        assert_eq!(px, vec![30.0, 20.0, 40.0, 10.0]);
        let back = p.unapply_vec_alloc(&px);
        assert_eq!(back.to_vec(), x.to_vec());
        assert_eq!(p.then(&p.inverse()), Permutation::identity(4));
    }

    #[test]
    fn symmetric_permutation_preserves_spmv() {
        let a = Csr::from_dense(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 0.0, 3.0, 0.0],
            &[0.0, 3.0, 5.0, 1.0],
            &[2.0, 0.0, 1.0, 6.0],
        ]);
        let p = Permutation::from_new_of_old(vec![2, 3, 1, 0]).unwrap();
        let b = p.permute_symmetric(&a).unwrap();
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut ax = vec![0.0; 4];
        spmv(&a, &x, &mut ax);
        let px = p.apply_vec_alloc(&x);
        let mut bpx = vec![0.0; 4];
        spmv(&b, &px, &mut bpx);
        let pax = p.apply_vec_alloc(&ax);
        for (u, v) in bpx.iter().zip(&pax) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn permute_then_inverse_permute_restores_matrix() {
        let a = Csr::from_dense(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 4.0], &[5.0, 0.0, 6.0]]);
        let p = Permutation::from_new_of_old(vec![1, 2, 0]).unwrap();
        let b = p.permute_symmetric(&a).unwrap();
        let a2 = p.inverse().permute_symmetric(&b).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn permute_rejects_size_mismatch() {
        let a = Csr::identity(3);
        let p = Permutation::identity(4);
        assert!(p.permute_symmetric(&a).is_err());
        let rect = Csr::zero(2, 3);
        let p2 = Permutation::identity(2);
        assert!(p2.permute_symmetric(&rect).is_err());
    }

    #[test]
    fn composition_applies_left_to_right() {
        let p = Permutation::from_new_of_old(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let pq = p.then(&q);
        // old 0 -> p: 1 -> q: 0
        assert_eq!(pq.new_of(0), 0);
        // old 1 -> p: 2 -> q: 1
        assert_eq!(pq.new_of(1), 1);
    }
}
