//! A polynomial-smoothed two-grid solver for the 1-D model problem.
//!
//! Multigrid is the third MPK consumer the paper names (§I, via hypre).
//! Polynomial smoothers — `x ← x + q(A)(b − Ax)` with a low-degree `q` —
//! are popular precisely because they batch SpMVs, and evaluating `q(A)r`
//! is one fused SSpMV for FBMPK. This module implements the classic
//! two-grid cycle for the 1-D Poisson problem: damped-Jacobi-equivalent
//! polynomial smoothing, full-weighting restriction, linear interpolation,
//! and an exact (Thomas) coarse solve.

use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{axpy, norm2};
use fbmpk_sparse::{Coo, Csr};

/// Builds the 1-D Poisson matrix `tridiag(-1, 2, -1)` of dimension `n`.
pub fn poisson1d(n: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0).expect("in bounds");
        if i > 0 {
            coo.push(i, i - 1, -1.0).expect("in bounds");
            coo.push(i - 1, i, -1.0).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// Monomial coefficients of the `m`-step damped-Jacobi error polynomial
/// applied to the residual: `q(A) = ω Σ_{j<m} (I − ωA)^j`, so that
/// `x + q(A) r` equals `m` damped-Jacobi sweeps (for unit diagonal scaling
/// the 1-D Poisson diagonal `2` is folded into `ω`).
pub fn jacobi_poly_coeffs(m: usize, omega: f64) -> Vec<f64> {
    assert!(m >= 1);
    // q(t) = omega * sum_{j=0}^{m-1} (1 - omega t)^j, expanded monomially.
    let mut sum = vec![0.0; m]; // degree m-1
    let mut term = vec![0.0; m];
    term[0] = 1.0; // (1 - omega t)^0
    for j in 0..m {
        for (s, &t) in sum.iter_mut().zip(&term) {
            *s += t;
        }
        if j + 1 < m {
            // term *= (1 - omega t)
            let mut next = vec![0.0; m];
            for (deg, &c) in term.iter().enumerate().take(m - 1) {
                next[deg] += c;
                next[deg + 1] -= omega * c;
            }
            term = next;
        }
    }
    sum.iter().map(|&c| omega * c).collect()
}

/// A two-grid solver for `A x = b` with `A = poisson1d(n)`, `n` odd.
pub struct TwoGrid1d<'a, E: MpkEngine + ?Sized> {
    engine: &'a E,
    coarse: Csr,
    n: usize,
    nc: usize,
    /// Smoother polynomial coefficients `q` (indexed by power of `A`).
    q: Vec<f64>,
    /// Pre/post smoothing applications.
    smooth_steps: usize,
}

impl<'a, E: MpkEngine + ?Sized> TwoGrid1d<'a, E> {
    /// Creates the solver. `engine` must wrap `poisson1d(n)` with `n` odd
    /// (so the coarse grid has `(n-1)/2` interior points).
    ///
    /// # Panics
    /// Panics when `n` is even or too small.
    pub fn new(engine: &'a E, smooth_degree: usize, smooth_steps: usize) -> Self {
        let n = engine.n();
        assert!(n >= 3 && n % 2 == 1, "need odd n >= 3");
        let nc = (n - 1) / 2;
        // Damped Jacobi for tridiag(-1,2,-1): classic omega = 2/3 on the
        // diagonal-scaled operator => omega/2 applied to A directly.
        let q = jacobi_poly_coeffs(smooth_degree, 2.0 / 3.0 / 2.0);
        TwoGrid1d { engine, coarse: poisson1d(nc), n, nc, q, smooth_steps }
    }

    /// One polynomial smoothing step: `x ← x + q(A)(b − A x)` — the
    /// residual polynomial is evaluated as a single SSpMV.
    fn smooth(&self, x: &mut [f64], b: &[f64]) {
        let r = crate::util::residual(self.engine, b, x);
        let qr = self.engine.sspmv(&self.q, &r);
        axpy(1.0, &qr, x);
    }

    /// Full-weighting restriction of a fine residual to the coarse grid.
    fn restrict(&self, fine: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; self.nc];
        for (ic, slot) in c.iter_mut().enumerate() {
            let i = 2 * ic + 1; // fine index of coarse point ic
            let left = fine[i - 1];
            let right = if i + 1 < self.n { fine[i + 1] } else { 0.0 };
            *slot = 0.25 * left + 0.5 * fine[i] + 0.25 * right;
        }
        c
    }

    /// Linear-interpolation prolongation of a coarse correction.
    fn prolong(&self, coarse: &[f64]) -> Vec<f64> {
        let mut f = vec![0.0; self.n];
        for (ic, &v) in coarse.iter().enumerate() {
            let i = 2 * ic + 1;
            f[i] += v;
            f[i - 1] += 0.5 * v;
            if i + 1 < self.n {
                f[i + 1] += 0.5 * v;
            }
        }
        f
    }

    /// Exact tridiagonal solve on the coarse grid (Thomas algorithm).
    ///
    /// The Galerkin coarse operator `R·A_h·P` for full-weighting `R` and
    /// linear interpolation `P` on `tridiag(-1,2,-1)` works out to
    /// `(1/4)·tridiag(-1,2,-1)`: applying `A_h` to the hat function gives
    /// `[-1/2, 0, 1, 0, -1/2]`, and restricting yields `1/2` on the
    /// diagonal and `-1/4` off it. We therefore solve
    /// `tridiag(-1,2,-1)·e = 4·(R r)` and the factor 4 is applied below.
    fn coarse_solve(&self, rhs: &[f64]) -> Vec<f64> {
        let n = self.nc;
        // Thomas on tridiag(-1, 2, -1).
        let mut c = vec![0.0; n]; // superdiagonal after elimination
        let mut dvec = vec![0.0; n]; // rhs after elimination
        let mut beta = 2.0;
        c[0] = -1.0 / beta;
        dvec[0] = rhs[0] / beta;
        for i in 1..n {
            beta = 2.0 + c[i - 1];
            c[i] = -1.0 / beta;
            dvec[i] = (rhs[i] + dvec[i - 1]) / beta;
        }
        let mut x = vec![0.0; n];
        x[n - 1] = dvec[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = dvec[i] - c[i] * x[i + 1];
        }
        // Galerkin scaling: we solved T e = rhs but the true coarse
        // operator is T/4 (see the doc comment), so e = 4 * T^{-1} rhs.
        for v in &mut x {
            *v *= 4.0;
        }
        x
    }

    /// One V(ν, ν)-cycle. Returns the new residual norm.
    pub fn cycle(&self, x: &mut [f64], b: &[f64]) -> f64 {
        for _ in 0..self.smooth_steps {
            self.smooth(x, b);
        }
        let r = crate::util::residual(self.engine, b, x);
        let rc = self.restrict(&r);
        let ec = self.coarse_solve(&rc);
        let ef = self.prolong(&ec);
        axpy(1.0, &ef, x);
        for _ in 0..self.smooth_steps {
            self.smooth(x, b);
        }
        crate::util::residual_norm(self.engine, b, x)
    }

    /// Solves to relative residual `tol`, returning `(x, cycles, relres)`.
    pub fn solve(&self, b: &[f64], tol: f64, max_cycles: usize) -> (Vec<f64>, usize, f64) {
        let bnorm = norm2(b).max(f64::MIN_POSITIVE);
        let mut x = vec![0.0; self.n];
        for cyc in 1..=max_cycles {
            let rn = self.cycle(&mut x, b);
            if rn / bnorm <= tol {
                return (x, cyc, rn / bnorm);
            }
        }
        let rn = crate::util::residual_norm(self.engine, b, &x);
        (x, max_cycles, rn / bnorm)
    }

    /// The coarse-grid operator (exposed for tests).
    pub fn coarse_matrix(&self) -> &Csr {
        &self.coarse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::spmv::spmv_alloc;

    #[test]
    fn jacobi_poly_matches_explicit_sweeps() {
        // m Jacobi sweeps from x=0: x_m = q(A) b; compare against the
        // explicit iteration x <- x + omega (b - A x).
        let n = 31;
        let a = poisson1d(n);
        let e = StandardMpk::new(&a, 1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 13) as f64) - 6.0).collect();
        let omega = 2.0 / 3.0 / 2.0;
        for m in 1..=4 {
            let q = jacobi_poly_coeffs(m, omega);
            let via_poly = e.sspmv(&q, &b);
            let mut x = vec![0.0; n];
            for _ in 0..m {
                let ax = spmv_alloc(&a, &x);
                for i in 0..n {
                    x[i] += omega * (b[i] - ax[i]);
                }
            }
            for (u, v) in via_poly.iter().zip(&x) {
                assert!((u - v).abs() < 1e-10 * v.abs().max(1.0), "m={m}");
            }
        }
    }

    #[test]
    fn two_grid_contracts_error() {
        let n = 127;
        let a = poisson1d(n);
        let e = StandardMpk::new(&a, 1).unwrap();
        let mg = TwoGrid1d::new(&e, 2, 1);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64 * 3.0).sin()).collect();
        let b = spmv_alloc(&a, &x_true);
        let mut x = vec![0.0; n];
        let bnorm = fbmpk_sparse::vecops::norm2(&b);
        let mut prev = bnorm;
        for _ in 0..6 {
            let rn = mg.cycle(&mut x, &b);
            assert!(rn < 0.35 * prev, "cycle did not contract: {rn} vs {prev}");
            prev = rn;
        }
        assert!(prev / bnorm < 1e-3);
    }

    #[test]
    fn two_grid_solves_to_tolerance() {
        let n = 255;
        let a = poisson1d(n);
        let e = StandardMpk::new(&a, 1).unwrap();
        let mg = TwoGrid1d::new(&e, 3, 1);
        let b: Vec<f64> = (0..n).map(|i| if i == n / 2 { 1.0 } else { 0.0 }).collect();
        let (x, cycles, relres) = mg.solve(&b, 1e-9, 60);
        assert!(relres <= 1e-9, "relres {relres} after {cycles} cycles");
        // Verify against a CG solve.
        let cg = crate::sstep::conjugate_gradient(&e, &b, 1e-12, 10_000);
        for (u, v) in x.iter().zip(&cg.x) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn engines_agree_in_multigrid() {
        let n = 63;
        let a = poisson1d(n);
        let e1 = StandardMpk::new(&a, 1).unwrap();
        let e2 = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let b = vec![1.0; n];
        let mg1 = TwoGrid1d::new(&e1, 2, 1);
        let mg2 = TwoGrid1d::new(&e2, 2, 1);
        let (x1, c1, _) = mg1.solve(&b, 1e-10, 50);
        let (x2, c2, _) = mg2.solve(&b, 1e-10, 50);
        assert_eq!(c1, c2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "odd n")]
    fn even_n_rejected() {
        let a = poisson1d(10);
        let e = StandardMpk::new(&a, 1).unwrap();
        TwoGrid1d::new(&e, 2, 1);
    }
}
