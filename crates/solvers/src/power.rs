//! Blocked power iteration for the dominant eigenvalue.
//!
//! Classic use of the matrix-power kernel (paper §I, §II-B): instead of one
//! SpMV per step, each outer step applies `Aˢ` through the engine's MPK —
//! which is exactly where FBMPK's halved matrix traffic pays off — then
//! renormalizes and estimates the eigenvalue from the last two iterates.

use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{dot, norm2, scale};

/// Result of a power iteration run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerResult {
    /// Dominant-eigenvalue estimate.
    pub eigenvalue: f64,
    /// Corresponding unit eigenvector estimate.
    pub eigenvector: Vec<f64>,
    /// Matrix applications performed (`s` per outer step).
    pub matvecs: usize,
    /// Whether the tolerance was reached before `max_matvecs`.
    pub converged: bool,
}

/// Runs blocked power iteration: per outer step, `s` matrix applications
/// through the engine's MPK, renormalization, and a Rayleigh-style estimate
/// `λ ≈ ⟨x_s, x_{s-1}⟩ / ⟨x_{s-1}, x_{s-1}⟩`.
///
/// Stops when two consecutive estimates agree to `tol` (relative) or after
/// `max_matvecs` applications.
///
/// # Panics
/// Panics when `s == 0`, `x0` has the wrong length, or `x0` is zero.
pub fn power_iteration<E: MpkEngine + ?Sized>(
    engine: &E,
    x0: &[f64],
    s: usize,
    tol: f64,
    max_matvecs: usize,
) -> PowerResult {
    assert!(s >= 1, "block size must be at least 1");
    assert_eq!(x0.len(), engine.n());
    let mut q = x0.to_vec();
    let nrm = norm2(&q);
    assert!(nrm > 0.0, "x0 must be nonzero");
    scale(1.0 / nrm, &mut q);
    let mut lambda = f64::NAN;
    let mut matvecs = 0usize;
    while matvecs < max_matvecs {
        let iterates = engine.krylov(&q, s);
        matvecs += s;
        let last = &iterates[s - 1];
        let prev: &[f64] = if s >= 2 { &iterates[s - 2] } else { &q };
        let denom = dot(prev, prev);
        if denom == 0.0 {
            // The iterate vanished: x0 was in the nullspace of A^s.
            return PowerResult { eigenvalue: 0.0, eigenvector: q, matvecs, converged: true };
        }
        let new_lambda = dot(last, prev) / denom;
        q = last.clone();
        let nrm = norm2(&q);
        if nrm == 0.0 {
            return PowerResult { eigenvalue: 0.0, eigenvector: q, matvecs, converged: true };
        }
        scale(1.0 / nrm, &mut q);
        if lambda.is_finite() && (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1e-300) {
            return PowerResult {
                eigenvalue: new_lambda,
                eigenvector: q,
                matvecs,
                converged: true,
            };
        }
        lambda = new_lambda;
    }
    PowerResult { eigenvalue: lambda, eigenvector: q, matvecs, converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::Csr;

    #[test]
    fn finds_dominant_eigenvalue_of_diagonal() {
        let a = Csr::from_dense(&[&[3.0, 0.0, 0.0], &[0.0, -1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = StandardMpk::new(&a, 1).unwrap();
        let r = power_iteration(&e, &[1.0, 1.0, 1.0], 2, 1e-12, 1000);
        assert!(r.converged);
        assert!((r.eigenvalue - 3.0).abs() < 1e-9);
        assert!(r.eigenvector[0].abs() > 0.999);
    }

    #[test]
    fn laplacian_eigenvalue_known_in_closed_form() {
        // 1D Laplacian eigenvalues: 2 - 2cos(pi i/(n+1)); max ~ 4.
        let n = 40;
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let want = 2.0 - 2.0 * (std::f64::consts::PI * n as f64 / (n as f64 + 1.0)).cos();
        let e = StandardMpk::new(&a, 1).unwrap();
        // Break symmetry in x0 (uniform start is orthogonal-ish to the top mode).
        let x0: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-3).collect();
        let r = power_iteration(&e, &x0, 4, 1e-12, 200_000);
        assert!((r.eigenvalue - want).abs() < 1e-6, "{} vs {want}", r.eigenvalue);
    }

    #[test]
    fn fbmpk_and_standard_engines_agree() {
        let a = fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n: 200,
            nnz_per_row: 9.0,
            bandwidth: 30,
            seed: 8,
        });
        let x0: Vec<f64> = (0..200).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let std = StandardMpk::new(&a, 1).unwrap();
        let fb = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let r1 = power_iteration(&std, &x0, 5, 1e-11, 50_000);
        let r2 = power_iteration(&fb, &x0, 5, 1e-11, 50_000);
        assert!(r1.converged && r2.converged);
        assert!((r1.eigenvalue - r2.eigenvalue).abs() < 1e-7 * r1.eigenvalue.abs());
    }

    #[test]
    fn nilpotent_matrix_reports_zero() {
        let a = Csr::from_dense(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = StandardMpk::new(&a, 1).unwrap();
        let r = power_iteration(&e, &[1.0, 1.0], 3, 1e-10, 100);
        assert!(r.converged);
        assert_eq!(r.eigenvalue, 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_start_rejected() {
        let a = Csr::identity(3);
        let e = StandardMpk::new(&a, 1).unwrap();
        power_iteration(&e, &[0.0; 3], 2, 1e-10, 10);
    }
}
