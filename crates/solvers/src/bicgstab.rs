//! BiCGStab (van der Vorst 1992) for unsymmetric systems.
//!
//! The suite's unsymmetric members (cage14, ML_Geer) need a Krylov method
//! that does not require symmetry; BiCGStab is the standard choice and
//! exercises the engines on general matrices (two SpMVs per iteration).

use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{axpy, dot, norm2};

/// Result of a BiCGStab solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BiCgStabResult {
    /// Approximate solution of `Ax = b`.
    pub x: Vec<f64>,
    /// Iterations performed (two SpMVs each).
    pub iters: usize,
    /// Final relative residual.
    pub relres: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Solves `Ax = b` with BiCGStab from a zero initial guess.
///
/// # Panics
/// Panics when `b.len() != engine.n()`.
pub fn bicgstab<E: MpkEngine + ?Sized>(
    engine: &E,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> BiCgStabResult {
    assert_eq!(b.len(), engine.n());
    let n = b.len();
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return BiCgStabResult { x: vec![0.0; n], iters: 0, relres: 0.0, converged: true };
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r0 = r.clone(); // shadow residual
    let mut p = r.clone();
    let mut rho = dot(&r0, &r);
    for it in 1..=max_iters {
        let v = engine.spmv(&p);
        let alpha_den = dot(&r0, &v);
        if alpha_den == 0.0 {
            return BiCgStabResult {
                x,
                iters: it - 1,
                relres: norm2(&r) / bnorm,
                converged: false,
            };
        }
        let alpha = rho / alpha_den;
        // s = r - alpha v
        let mut s = r.clone();
        axpy(-alpha, &v, &mut s);
        if norm2(&s) / bnorm <= tol {
            axpy(alpha, &p, &mut x);
            return BiCgStabResult { x, iters: it, relres: norm2(&s) / bnorm, converged: true };
        }
        let t = engine.spmv(&s);
        let tt = dot(&t, &t);
        if tt == 0.0 {
            return BiCgStabResult {
                x,
                iters: it - 1,
                relres: norm2(&r) / bnorm,
                converged: false,
            };
        }
        let omega = dot(&t, &s) / tt;
        // x += alpha p + omega s
        axpy(alpha, &p, &mut x);
        axpy(omega, &s, &mut x);
        // r = s - omega t
        r = s;
        axpy(-omega, &t, &mut r);
        let relres = norm2(&r) / bnorm;
        if relres <= tol {
            return BiCgStabResult { x, iters: it, relres, converged: true };
        }
        let rho_new = dot(&r0, &r);
        if rho_new == 0.0 || omega == 0.0 {
            return BiCgStabResult { x, iters: it, relres, converged: false };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        // p = r + beta (p - omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        rho = rho_new;
    }
    BiCgStabResult { x, iters: max_iters, relres: norm2(&r) / bnorm, converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::spmv::spmv_alloc;
    use fbmpk_sparse::vecops::rel_err_inf;

    #[test]
    fn solves_unsymmetric_diagonally_dominant_system() {
        // Cage-like transition matrix shifted to be nonsingular:
        // (2I - A) with row-stochastic A is strictly diagonally dominant.
        let a = fbmpk_gen::cage::cage_like(fbmpk_gen::cage::CageParams {
            n: 512,
            neighbors: 7,
            seed: 4,
        });
        let n = a.nrows();
        // Build 2I - A.
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for (r, c, v) in a.iter() {
            coo.push(r, c, -v).unwrap();
        }
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        let shifted = coo.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let b = spmv_alloc(&shifted, &x_true);
        let e = StandardMpk::new(&shifted, 1).unwrap();
        let sol = bicgstab(&e, &b, 1e-11, 2000);
        assert!(sol.converged, "relres {}", sol.relres);
        assert!(rel_err_inf(&sol.x, &x_true) < 1e-8);
    }

    #[test]
    fn engines_agree() {
        let a = fbmpk_gen::poisson::grid2d_5pt(9, 9);
        let b: Vec<f64> = (0..81).map(|i| ((i % 4) as f64) - 1.5).collect();
        let e1 = StandardMpk::new(&a, 1).unwrap();
        let e2 = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let s1 = bicgstab(&e1, &b, 1e-10, 2000);
        let s2 = bicgstab(&e2, &b, 1e-10, 2000);
        assert!(s1.converged && s2.converged);
        assert_eq!(s1.iters, s2.iters);
        assert!(rel_err_inf(&s1.x, &s2.x) < 1e-9);
    }

    #[test]
    fn zero_rhs_trivial() {
        let a = fbmpk_sparse::Csr::identity(5);
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = bicgstab(&e, &[0.0; 5], 1e-12, 10);
        assert!(sol.converged);
        assert_eq!(sol.iters, 0);
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let a = fbmpk_sparse::Csr::identity(6);
        let e = StandardMpk::new(&a, 1).unwrap();
        let b = vec![2.0; 6];
        let sol = bicgstab(&e, &b, 1e-12, 10);
        assert!(sol.converged);
        assert!(sol.iters <= 1);
        assert!(rel_err_inf(&sol.x, &b) < 1e-12);
    }
}
