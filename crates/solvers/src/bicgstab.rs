//! BiCGStab (van der Vorst 1992) for unsymmetric systems.
//!
//! The suite's unsymmetric members (cage14, ML_Geer) need a Krylov method
//! that does not require symmetry; BiCGStab is the standard choice and
//! exercises the engines on general matrices (two SpMVs per iteration).

use crate::SolverError;
use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{axpy, dot, norm2};

/// Result of a BiCGStab solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BiCgStabResult {
    /// Approximate solution of `Ax = b`.
    pub x: Vec<f64>,
    /// Iterations performed (two SpMVs each).
    pub iters: usize,
    /// Final relative residual.
    pub relres: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Solves `Ax = b` with BiCGStab from a zero initial guess.
///
/// The recurrence is guarded: a NaN/Inf iterate or an exactly-zero pivot
/// quantity (`rho`, `omega`, `r0·v`) triggers one restart — the shadow
/// residual is re-seeded from the current true residual, which is the
/// standard recovery for the Lanczos-breakdown failure mode — and a second
/// breakdown is reported as [`SolverError::Breakdown`] naming the quantity.
///
/// # Errors
/// Returns [`SolverError::Breakdown`] when the recurrence breaks down
/// after the restart attempt, or immediately on non-finite quantities
/// (those recur deterministically, so a restart cannot help).
///
/// # Panics
/// Panics when `b.len() != engine.n()`.
pub fn bicgstab<E: MpkEngine + ?Sized>(
    engine: &E,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<BiCgStabResult, SolverError> {
    assert_eq!(b.len(), engine.n());
    let _span = fbmpk_obs::phases::span("solve.bicgstab");
    let n = b.len();
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok(BiCgStabResult { x: vec![0.0; n], iters: 0, relres: 0.0, converged: true });
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut it = 0usize;
    let mut restarts = 0usize;
    'restart: loop {
        let r0 = r.clone(); // shadow residual
        let mut p = r.clone();
        let mut rho = dot(&r0, &r);
        while it < max_iters {
            it += 1;
            let _iter = fbmpk_obs::phases::span("solve.bicgstab.iter");
            let v = engine.spmv(&p);
            let alpha_den = dot(&r0, &v);
            if !alpha_den.is_finite() {
                return Err(SolverError::Breakdown { iter: it, quantity: "r0·v (alpha)" });
            }
            if alpha_den == 0.0 {
                if restarts == 0 {
                    restarts += 1;
                    continue 'restart;
                }
                return Err(SolverError::Breakdown { iter: it, quantity: "r0·v (alpha)" });
            }
            let alpha = rho / alpha_den;
            // s = r - alpha v
            let mut s = r.clone();
            axpy(-alpha, &v, &mut s);
            let snorm = norm2(&s);
            if !snorm.is_finite() {
                return Err(SolverError::Breakdown { iter: it, quantity: "iterate s" });
            }
            if snorm / bnorm <= tol {
                axpy(alpha, &p, &mut x);
                return Ok(BiCgStabResult { x, iters: it, relres: snorm / bnorm, converged: true });
            }
            let t = engine.spmv(&s);
            let tt = dot(&t, &t);
            if !tt.is_finite() {
                return Err(SolverError::Breakdown { iter: it, quantity: "t·t (omega)" });
            }
            if tt == 0.0 {
                // A s = 0 with s != 0: bank the alpha step, then restart
                // from the current residual once.
                axpy(alpha, &p, &mut x);
                r = s;
                if restarts == 0 {
                    restarts += 1;
                    continue 'restart;
                }
                return Err(SolverError::Breakdown { iter: it, quantity: "t·t (omega)" });
            }
            let omega = dot(&t, &s) / tt;
            // x += alpha p + omega s
            axpy(alpha, &p, &mut x);
            axpy(omega, &s, &mut x);
            // r = s - omega t
            r = s;
            axpy(-omega, &t, &mut r);
            let relres = norm2(&r) / bnorm;
            if !relres.is_finite() {
                return Err(SolverError::Breakdown { iter: it, quantity: "residual norm" });
            }
            if relres <= tol {
                return Ok(BiCgStabResult { x, iters: it, relres, converged: true });
            }
            let rho_new = dot(&r0, &r);
            if rho_new == 0.0 || omega == 0.0 {
                if restarts == 0 {
                    restarts += 1;
                    continue 'restart;
                }
                let quantity = if rho_new == 0.0 { "rho" } else { "omega" };
                return Err(SolverError::Breakdown { iter: it, quantity });
            }
            let beta = (rho_new / rho) * (alpha / omega);
            // p = r + beta (p - omega v)
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
            rho = rho_new;
        }
        return Ok(BiCgStabResult {
            x,
            iters: max_iters,
            relres: norm2(&r) / bnorm,
            converged: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::spmv::spmv_alloc;
    use fbmpk_sparse::vecops::rel_err_inf;

    #[test]
    fn solves_unsymmetric_diagonally_dominant_system() {
        // Cage-like transition matrix shifted to be nonsingular:
        // (2I - A) with row-stochastic A is strictly diagonally dominant.
        let a = fbmpk_gen::cage::cage_like(fbmpk_gen::cage::CageParams {
            n: 512,
            neighbors: 7,
            seed: 4,
        });
        let n = a.nrows();
        // Build 2I - A.
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for (r, c, v) in a.iter() {
            coo.push(r, c, -v).unwrap();
        }
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        let shifted = coo.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let b = spmv_alloc(&shifted, &x_true);
        let e = StandardMpk::new(&shifted, 1).unwrap();
        let sol = bicgstab(&e, &b, 1e-11, 2000).unwrap();
        assert!(sol.converged, "relres {}", sol.relres);
        assert!(rel_err_inf(&sol.x, &x_true) < 1e-8);
    }

    #[test]
    fn engines_agree() {
        let a = fbmpk_gen::poisson::grid2d_5pt(9, 9);
        let b: Vec<f64> = (0..81).map(|i| ((i % 4) as f64) - 1.5).collect();
        let e1 = StandardMpk::new(&a, 1).unwrap();
        let e2 = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let s1 = bicgstab(&e1, &b, 1e-10, 2000).unwrap();
        let s2 = bicgstab(&e2, &b, 1e-10, 2000).unwrap();
        assert!(s1.converged && s2.converged);
        assert_eq!(s1.iters, s2.iters);
        assert!(rel_err_inf(&s1.x, &s2.x) < 1e-9);
    }

    #[test]
    fn zero_rhs_trivial() {
        let a = fbmpk_sparse::Csr::identity(5);
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = bicgstab(&e, &[0.0; 5], 1e-12, 10).unwrap();
        assert!(sol.converged);
        assert_eq!(sol.iters, 0);
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let a = fbmpk_sparse::Csr::identity(6);
        let e = StandardMpk::new(&a, 1).unwrap();
        let b = vec![2.0; 6];
        let sol = bicgstab(&e, &b, 1e-12, 10).unwrap();
        assert!(sol.converged);
        assert!(sol.iters <= 1);
        assert!(rel_err_inf(&sol.x, &b) < 1e-12);
    }

    #[test]
    fn persistent_breakdown_is_typed_after_one_restart() {
        // Rotation matrix: r0·(A r0) = 0 for r0 = e1, and the restart
        // re-seeds to the same residual, so the breakdown recurs.
        let a = fbmpk_sparse::Csr::from_dense(&[&[0.0, 1.0], &[-1.0, 0.0]]);
        let e = StandardMpk::new(&a, 1).unwrap();
        match bicgstab(&e, &[1.0, 0.0], 1e-12, 10) {
            Err(SolverError::Breakdown { iter, quantity }) => {
                assert_eq!(iter, 2, "one restart attempt before the error");
                assert!(quantity.contains("alpha"), "{quantity}");
            }
            other => panic!("expected Breakdown, got {other:?}"),
        }
    }

    #[test]
    fn overflow_to_non_finite_is_typed() {
        // Entries near f64::MAX overflow the very first inner products.
        let a = fbmpk_sparse::Csr::from_dense(&[&[1e308, 0.0], &[0.0, 1e308]]);
        let e = StandardMpk::new(&a, 1).unwrap();
        match bicgstab(&e, &[1e308, 1e308], 1e-12, 10) {
            Err(SolverError::Breakdown { iter: 1, .. }) => {}
            other => panic!("expected Breakdown at iter 1, got {other:?}"),
        }
    }
}
