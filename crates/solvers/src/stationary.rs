//! Classical stationary iterations: Jacobi, weighted Jacobi, and SOR/SSOR.
//!
//! These are the textbook smoothers/solvers the multigrid and SYMGS
//! modules generalize; they double as convergence references in tests
//! (Jacobi and SYMGS bracket most smoother behavior) and exercise the
//! engines with many small repeated SpMVs — the workload profile where the
//! plan's workspace reuse matters.

use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::norm2;
use fbmpk_sparse::{Csr, TriangularSplit};

/// Result of a stationary solve.
#[derive(Debug, Clone, PartialEq)]
pub struct StationaryResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Sweeps performed.
    pub iters: usize,
    /// Final relative residual.
    pub relres: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Weighted Jacobi: `x ← x + ω D⁻¹ (b − A x)` until `‖b−Ax‖/‖b‖ ≤ tol`.
/// `omega = 1` is classical Jacobi.
///
/// # Panics
/// Panics on length mismatch or zero diagonal.
pub fn jacobi<E: MpkEngine + ?Sized>(
    engine: &E,
    diag: &[f64],
    b: &[f64],
    omega: f64,
    tol: f64,
    max_iters: usize,
) -> StationaryResult {
    let n = engine.n();
    assert_eq!(b.len(), n);
    assert_eq!(diag.len(), n);
    assert!(diag.iter().all(|&d| d != 0.0), "Jacobi requires a nonzero diagonal");
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    for it in 0..max_iters {
        let ax = engine.spmv(&x);
        let mut rn = 0.0f64;
        let mut r = vec![0.0; n];
        for i in 0..n {
            r[i] = b[i] - ax[i];
            rn += r[i] * r[i];
        }
        let relres = rn.sqrt() / bnorm;
        // Convergence is tested on the residual of the *current* x, so the
        // returned (x, relres) pair is consistent.
        if relres <= tol {
            return StationaryResult { x, iters: it, relres, converged: true };
        }
        for i in 0..n {
            x[i] += omega * r[i] / diag[i];
        }
    }
    let relres = crate::util::residual_norm(engine, b, &x) / bnorm;
    StationaryResult { x, iters: max_iters, relres, converged: relres <= tol }
}

/// Successive over-relaxation: one forward sweep per iteration with
/// relaxation factor `omega ∈ (0, 2)`; `omega = 1` is Gauss–Seidel.
/// Operates directly on the triangular split (serial sweep, natural
/// order — the colored parallel variant lives in `fbmpk::symgs`).
///
/// # Panics
/// Panics on length mismatch, zero diagonal, or `omega` outside `(0, 2)`.
pub fn sor(
    split: &TriangularSplit,
    b: &[f64],
    omega: f64,
    tol: f64,
    max_iters: usize,
) -> StationaryResult {
    assert!(omega > 0.0 && omega < 2.0, "SOR requires 0 < omega < 2");
    let n = split.n();
    assert_eq!(b.len(), n);
    assert!(split.diag.iter().all(|&d| d != 0.0), "SOR requires a nonzero diagonal");
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let l = &split.lower;
    let u = &split.upper;
    for it in 1..=max_iters {
        for r in 0..n {
            let mut s = b[r];
            for (&c, &v) in l.row_cols(r).iter().zip(l.row_vals(r)) {
                s -= v * x[c as usize];
            }
            for (&c, &v) in u.row_cols(r).iter().zip(u.row_vals(r)) {
                s -= v * x[c as usize];
            }
            let gs = s / split.diag[r];
            x[r] = (1.0 - omega) * x[r] + omega * gs;
        }
        // Residual check (one extra pass; fine for a reference solver).
        let relres = residual(split, b, &x) / bnorm;
        if relres <= tol {
            return StationaryResult { x, iters: it, relres, converged: true };
        }
    }
    let relres = residual(split, b, &x) / bnorm;
    StationaryResult { x, iters: max_iters, relres, converged: relres <= tol }
}

fn residual(split: &TriangularSplit, b: &[f64], x: &[f64]) -> f64 {
    let mut ax = vec![0.0; split.n()];
    fbmpk_sparse::spmv::spmv_split(&split.lower, &split.diag, &split.upper, x, &mut ax);
    for (axi, &bi) in ax.iter_mut().zip(b) {
        *axi = bi - *axi;
    }
    norm2(&ax)
}

/// Convenience: split `a` and run SOR.
///
/// # Panics
/// See [`sor`]; also panics for non-square `a`.
pub fn sor_on(a: &Csr, b: &[f64], omega: f64, tol: f64, max_iters: usize) -> StationaryResult {
    let split = TriangularSplit::split(a).expect("square matrix");
    sor(&split, b, omega, tol, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::StandardMpk;
    use fbmpk_sparse::spmv::spmv_alloc;
    use fbmpk_sparse::vecops::rel_err_inf;

    fn spd() -> Csr {
        fbmpk_gen::poisson::grid2d_5pt(10, 10)
    }

    #[test]
    fn jacobi_converges_on_diagonally_dominant() {
        let a = fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n: 200,
            nnz_per_row: 7.0,
            bandwidth: 30,
            seed: 3,
        });
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = spmv_alloc(&a, &x_true);
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = jacobi(&e, &a.diagonal(), &b, 1.0, 1e-10, 10_000);
        assert!(sol.converged, "relres {}", sol.relres);
        assert!(rel_err_inf(&sol.x, &x_true) < 1e-7);
    }

    #[test]
    fn sor_faster_than_jacobi_on_poisson() {
        let a = spd();
        let n = a.nrows();
        let b = vec![1.0; n];
        let e = StandardMpk::new(&a, 1).unwrap();
        // Damped Jacobi converges on Poisson (rho(I - w D^-1 A) < 1 for w<1).
        let jac = jacobi(&e, &a.diagonal(), &b, 0.8, 1e-8, 100_000);
        let gs = sor_on(&a, &b, 1.0, 1e-8, 100_000);
        let over = sor_on(&a, &b, 1.5, 1e-8, 100_000);
        assert!(jac.converged && gs.converged && over.converged);
        assert!(gs.iters < jac.iters, "GS {} vs Jacobi {}", gs.iters, jac.iters);
        assert!(over.iters < gs.iters, "SOR(1.5) {} vs GS {}", over.iters, gs.iters);
    }

    #[test]
    fn all_methods_agree_on_solution() {
        let a = spd();
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let b = spmv_alloc(&a, &x_true);
        let e = StandardMpk::new(&a, 1).unwrap();
        let jac = jacobi(&e, &a.diagonal(), &b, 0.8, 1e-11, 200_000);
        let gs = sor_on(&a, &b, 1.0, 1e-11, 200_000);
        assert!(jac.converged && gs.converged);
        assert!(rel_err_inf(&jac.x, &x_true) < 1e-7);
        assert!(rel_err_inf(&gs.x, &x_true) < 1e-7);
    }

    #[test]
    #[should_panic(expected = "0 < omega < 2")]
    fn sor_rejects_bad_omega() {
        let a = Csr::identity(3);
        sor_on(&a, &[1.0; 3], 2.5, 1e-8, 10);
    }

    #[test]
    fn gauss_seidel_matches_symgs_half_sweep_semantics() {
        // One SOR(1.0) forward sweep from zero equals the forward half of
        // the plan's SYMGS sweep from zero.
        let a = spd();
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) - 1.0).collect();
        let split = TriangularSplit::split(&a).unwrap();
        // Forward GS sweep by hand:
        let mut fwd = vec![0.0; n];
        for r in 0..n {
            let mut s = b[r];
            for (&c, &v) in split.lower.row_cols(r).iter().zip(split.lower.row_vals(r)) {
                s -= v * fwd[c as usize];
            }
            for (&c, &v) in split.upper.row_cols(r).iter().zip(split.upper.row_vals(r)) {
                s -= v * fwd[c as usize];
            }
            fwd[r] = s / split.diag[r];
        }
        // SOR with omega=1, one iteration, from zero:
        let one = sor(&split, &b, 1.0, 0.0, 1);
        assert_eq!(one.x, fwd);
    }
}
