//! Lanczos tridiagonalization and Ritz-value extraction.
//!
//! The eigenvalue workloads the paper cites (EVSL, ChASE, templates
//! literature) are Krylov eigensolvers; Lanczos is their symmetric core.
//! Each step is one SpMV through the engine; the resulting tridiagonal
//! matrix's eigenvalues (Ritz values) approximate extremal eigenvalues of
//! `A`. Full reorthogonalization keeps small runs accurate.

use crate::SolverError;
use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{axpy, dot, norm2, scale};

/// Output of a Lanczos run.
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosResult {
    /// Diagonal of the tridiagonal matrix (α).
    pub alpha: Vec<f64>,
    /// Off-diagonal (β), length `alpha.len() - 1`.
    pub beta: Vec<f64>,
    /// Orthonormal Lanczos basis (each of length `n`).
    pub basis: Vec<Vec<f64>>,
    /// Whether the recurrence broke down early (invariant subspace found).
    pub breakdown: bool,
}

/// Runs `m` Lanczos steps with full reorthogonalization from start vector
/// `v0`.
///
/// An exact invariant subspace (tiny `beta`) is a *benign* early exit and
/// is reported through the `breakdown` flag, not an error: the Ritz values
/// computed so far are exact. A NaN/Inf recurrence coefficient, by
/// contrast, poisons every later step and is reported as
/// [`SolverError::Breakdown`].
///
/// # Errors
/// Returns [`SolverError::Breakdown`] when `alpha` or `beta` goes
/// non-finite (NaN/Inf in the operator or an overflowing iterate).
///
/// # Panics
/// Panics when `v0` is zero, the wrong length, or `m == 0`.
pub fn lanczos<E: MpkEngine + ?Sized>(
    engine: &E,
    v0: &[f64],
    m: usize,
) -> Result<LanczosResult, SolverError> {
    assert!(m >= 1);
    assert_eq!(v0.len(), engine.n());
    let _span = fbmpk_obs::phases::span("solve.lanczos");
    let nrm = norm2(v0);
    assert!(nrm > 0.0, "start vector must be nonzero");
    let mut q = v0.to_vec();
    scale(1.0 / nrm, &mut q);
    let mut basis = vec![q.clone()];
    let mut alpha = Vec::with_capacity(m);
    let mut beta = Vec::with_capacity(m.saturating_sub(1));
    for j in 0..m {
        let _iter = fbmpk_obs::phases::span("solve.lanczos.iter");
        let mut w = engine.spmv(&basis[j]);
        let a = dot(&w, &basis[j]);
        if !a.is_finite() {
            return Err(SolverError::Breakdown { iter: j + 1, quantity: "alpha" });
        }
        alpha.push(a);
        axpy(-a, &basis[j], &mut w);
        if j > 0 {
            let b: f64 = beta[j - 1];
            axpy(-b, &basis[j - 1], &mut w);
        }
        // Full reorthogonalization (twice is enough).
        for _ in 0..2 {
            for qi in &basis {
                let c = dot(&w, qi);
                axpy(-c, qi, &mut w);
            }
        }
        if j + 1 == m {
            break;
        }
        let b = norm2(&w);
        if !b.is_finite() {
            return Err(SolverError::Breakdown { iter: j + 1, quantity: "beta" });
        }
        // Scale-relative breakdown test: an absolute 1e-13 cutoff would
        // falsely trigger on small-magnitude operators (e.g. 1e-12 * A).
        let scl = a.abs().max(if j > 0 { beta[j - 1] } else { 0.0 }).max(f64::MIN_POSITIVE);
        if b < 1e-12 * scl {
            return Ok(LanczosResult { alpha, beta, basis, breakdown: true });
        }
        beta.push(b);
        scale(1.0 / b, &mut w);
        basis.push(w);
    }
    Ok(LanczosResult { alpha, beta, basis, breakdown: false })
}

/// Eigenvalues of the symmetric tridiagonal `(alpha, beta)` matrix via
/// bisection on the Sturm sequence — ascending order, all of them.
///
/// # Panics
/// Panics when `beta.len() + 1 != alpha.len()`.
pub fn tridiag_eigenvalues(alpha: &[f64], beta: &[f64]) -> Vec<f64> {
    let m = alpha.len();
    assert_eq!(beta.len() + 1, m, "beta must have one fewer entry than alpha");
    if m == 0 {
        return Vec::new();
    }
    // Gershgorin interval.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..m {
        let r = (if i > 0 { beta[i - 1].abs() } else { 0.0 })
            + (if i + 1 < m { beta[i].abs() } else { 0.0 });
        lo = lo.min(alpha[i] - r);
        hi = hi.max(alpha[i] + r);
    }
    // Sturm count: number of eigenvalues < x.
    let count = |x: f64| -> usize {
        let mut cnt = 0usize;
        let mut d = 1.0f64;
        for i in 0..m {
            let b2 = if i > 0 { beta[i - 1] * beta[i - 1] } else { 0.0 };
            d = alpha[i] - x - b2 / if d != 0.0 { d } else { f64::MIN_POSITIVE };
            if d < 0.0 {
                cnt += 1;
            }
        }
        cnt
    };
    let mut eigs = Vec::with_capacity(m);
    for idx in 0..m {
        let (mut a, mut b) = (lo - 1e-10, hi + 1e-10);
        for _ in 0..120 {
            let mid = 0.5 * (a + b);
            if count(mid) <= idx {
                a = mid;
            } else {
                b = mid;
            }
        }
        eigs.push(0.5 * (a + b));
    }
    eigs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::Csr;

    #[test]
    fn tridiag_eigs_of_known_matrix() {
        // tridiag(-1, 2, -1) of size m: eigenvalues 2 - 2cos(pi k/(m+1)).
        let m = 8;
        let alpha = vec![2.0; m];
        let beta = vec![-1.0; m - 1];
        let eigs = tridiag_eigenvalues(&alpha, &beta);
        for (k, &e) in eigs.iter().enumerate() {
            let want =
                2.0 - 2.0 * (std::f64::consts::PI * (k as f64 + 1.0) / (m as f64 + 1.0)).cos();
            assert!((e - want).abs() < 1e-8, "eig {k}: {e} vs {want}");
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        let a = fbmpk_gen::poisson::grid2d_5pt(8, 8);
        let n = a.nrows();
        let v0: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let e = StandardMpk::new(&a, 1).unwrap();
        let r = lanczos(&e, &v0, 12).unwrap();
        assert!(!r.breakdown);
        for i in 0..r.basis.len() {
            for j in 0..=i {
                let d = dot(&r.basis[i], &r.basis[j]);
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-10, "({i},{j}) = {d}");
            }
        }
    }

    #[test]
    fn overflowing_operator_is_typed_breakdown() {
        // Finite entries near f64::MAX: the first alpha inner product
        // overflows to infinity (matrix validation passes, the recurrence
        // cannot).
        let a = Csr::from_dense(&[&[1e308, 1e308], &[1e308, 1e308]]);
        let e = StandardMpk::new(&a, 1).unwrap();
        match lanczos(&e, &[1.0, 1.0], 4) {
            Err(SolverError::Breakdown { iter: 1, quantity: "alpha" }) => {}
            other => panic!("expected alpha breakdown at iter 1, got {other:?}"),
        }
    }

    #[test]
    fn ritz_values_converge_to_extremal_eigenvalues() {
        // 2D Laplacian on p x q grid: eigenvalues known in closed form.
        let (p, q) = (9usize, 7usize);
        let a = fbmpk_gen::poisson::grid2d_5pt(p, q);
        let pi = std::f64::consts::PI;
        let mut exact: Vec<f64> = (1..=p)
            .flat_map(|i| {
                (1..=q).map(move |j| {
                    4.0 - 2.0 * (pi * i as f64 / (p as f64 + 1.0)).cos()
                        - 2.0 * (pi * j as f64 / (q as f64 + 1.0)).cos()
                })
            })
            .collect();
        exact.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let n = a.nrows();
        let v0: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.13).sin()).collect();
        let e = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let r = lanczos(&e, &v0, 30).unwrap();
        let ritz = tridiag_eigenvalues(&r.alpha, &r.beta);
        // Extremal Ritz values converge first.
        let lam_max = exact.last().unwrap();
        let lam_min = exact.first().unwrap();
        assert!((ritz.last().unwrap() - lam_max).abs() < 1e-6, "max ritz {}", ritz.last().unwrap());
        assert!(
            (ritz.first().unwrap() - lam_min).abs() < 1e-4,
            "min ritz {}",
            ritz.first().unwrap()
        );
    }

    #[test]
    fn breakdown_on_invariant_subspace() {
        // Start vector = eigenvector of a diagonal matrix: 1-step breakdown.
        let a = Csr::from_dense(&[&[2.0, 0.0], &[0.0, 5.0]]);
        let e = StandardMpk::new(&a, 1).unwrap();
        let r = lanczos(&e, &[1.0, 0.0], 2).unwrap();
        assert!(r.breakdown);
        assert_eq!(r.alpha.len(), 1);
        assert!((r.alpha[0] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn engines_agree() {
        let a = fbmpk_gen::poisson::grid2d_5pt(6, 6);
        let v0 = vec![1.0; 36];
        let e1 = StandardMpk::new(&a, 1).unwrap();
        let e2 = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let r1 = lanczos(&e1, &v0, 10).unwrap();
        let r2 = lanczos(&e2, &v0, 10).unwrap();
        for (x, y) in r1.alpha.iter().zip(&r2.alpha) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}
