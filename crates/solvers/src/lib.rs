//! # fbmpk-solvers
//!
//! Iterative methods built on matrix-power kernels — the application
//! classes the paper's introduction motivates (eigenvalue problems, linear
//! equations, multigrid methods). Every solver is written against
//! [`fbmpk::MpkEngine`], so the same algorithm runs on the standard MPK
//! baseline or on FBMPK; correctness tests assert both paths agree and the
//! benchmarks compare their speed end-to-end.
//!
//! * [`power`] — blocked power iteration for the dominant eigenvalue,
//! * [`chebyshev`] — Chebyshev polynomial filters (evaluated as one SSpMV)
//!   and the classic Chebyshev semi-iteration for SPD systems,
//! * [`sstep`] — s-step Krylov basis generation (monomial and Newton) and
//!   a conjugate-gradient reference solver,
//! * [`bicgstab`](mod@bicgstab) — BiCGStab for the suite's unsymmetric members,
//! * [`iccg`](mod@iccg) — IC(0) + preconditioned CG, the method ABMC was built for,
//! * [`gmres`](mod@gmres) — restarted GMRES with MGS Arnoldi and Givens QR,
//! * [`stationary`] — Jacobi / weighted Jacobi / SOR reference iterations,
//! * [`lanczos`](mod@lanczos) — Lanczos tridiagonalization with Ritz-value extraction,
//! * [`multigrid`] — a polynomial-smoothed two-grid solver for the 1-D
//!   model problem.

pub mod bicgstab;
pub mod chebyshev;
pub mod gmres;
pub mod iccg;
pub mod lanczos;
pub mod multigrid;
pub mod power;
pub mod sstep;
pub mod stationary;
pub mod util;

/// Errors produced by the iterative solvers.
///
/// A *breakdown* is a recurrence quantity that went non-finite (NaN/Inf
/// iterate) or exactly zero where the method divides by it (`rho`, `omega`,
/// `beta`). The solvers detect these instead of silently iterating on
/// garbage; BiCGStab additionally attempts one restart (re-seeding the
/// shadow residual) before reporting the breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The recurrence hit an unrecoverable quantity at iteration `iter`
    /// (1-based). `quantity` names what broke down.
    Breakdown {
        /// Iteration (1-based) at which the breakdown was detected.
        iter: usize,
        /// Human-readable name of the offending quantity.
        quantity: &'static str,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Breakdown { iter, quantity } => {
                write!(f, "solver breakdown at iteration {iter}: {quantity}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

pub use bicgstab::bicgstab;
pub use chebyshev::{chebyshev_filter, chebyshev_solve, gershgorin_bounds};
pub use gmres::gmres;
pub use iccg::{iccg, Ic0};
pub use lanczos::{lanczos, tridiag_eigenvalues};
pub use power::power_iteration;
pub use sstep::{conjugate_gradient, sstep_basis_monomial, sstep_basis_newton};
pub use stationary::{jacobi, sor};
pub use util::{residual, residual_norm};
