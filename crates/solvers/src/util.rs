//! Small helpers shared across the solver implementations.

use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::norm2;

/// The residual vector `r = b - A x` via one engine SpMV — the idiom every
/// solver needs at least once per convergence check.
///
/// # Panics
/// Panics when lengths disagree with the engine dimension.
pub fn residual<E: MpkEngine + ?Sized>(engine: &E, b: &[f64], x: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), engine.n());
    assert_eq!(x.len(), engine.n());
    let ax = engine.spmv(x);
    b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect()
}

/// `‖b - A x‖₂`.
pub fn residual_norm<E: MpkEngine + ?Sized>(engine: &E, b: &[f64], x: &[f64]) -> f64 {
    norm2(&residual(engine, b, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::StandardMpk;

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = fbmpk_gen::poisson::grid2d_5pt(4, 4);
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let b = fbmpk_sparse::spmv::spmv_alloc(&a, &x);
        let e = StandardMpk::new(&a, 1).unwrap();
        assert!(residual_norm(&e, &b, &x) < 1e-12);
        let r = residual(&e, &b, &[0.0; 16]);
        assert_eq!(r, b);
    }
}
