//! Chebyshev polynomial filters and the Chebyshev semi-iteration.
//!
//! Chebyshev-filtered subspace iteration (ChASE, EVSL — both cited by the
//! paper as MPK consumers) applies `p(A)x` for a degree-`d` Chebyshev
//! polynomial: exactly the `y = Σ αᵢ Aⁱ x` form FBMPK accelerates, and the
//! filter's monomial coefficients drive [`fbmpk::MpkEngine::sspmv`]
//! directly. The semi-iteration solves SPD systems with one SpMV per step
//! given spectral bounds.

use crate::SolverError;
use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{axpby, axpy, norm2};
use fbmpk_sparse::Csr;

/// Gershgorin bounds `(lo, hi)` on the spectrum: every eigenvalue lies in
/// `[min_i (a_ii - R_i), max_i (a_ii + R_i)]` with `R_i` the off-diagonal
/// row sum of absolute values.
pub fn gershgorin_bounds(a: &Csr) -> (f64, f64) {
    assert_eq!(a.nrows(), a.ncols());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in 0..a.nrows() {
        let mut d = 0.0;
        let mut radius = 0.0;
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            if c as usize == r {
                d = v;
            } else {
                radius += v.abs();
            }
        }
        lo = lo.min(d - radius);
        hi = hi.max(d + radius);
    }
    if a.nrows() == 0 {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Monomial coefficients of the scaled-shifted Chebyshev polynomial
/// `T_d(ℓ(t))` with `ℓ(t) = (2t - (hi+lo)) / (hi - lo)`, returned lowest
/// degree first (length `d + 1`).
///
/// Monomial expansion is numerically fine for the small degrees MPK targets
/// (`d ≲ 12`); larger filters should use the three-term recurrence.
///
/// # Panics
/// Panics when `hi <= lo`.
pub fn chebyshev_coeffs(d: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(hi > lo, "need a nonempty interval");
    let b0 = -(hi + lo) / (hi - lo); // constant term of l(t)
    let b1 = 2.0 / (hi - lo); // linear term of l(t)
                              // T_0 = 1, T_1 = l(t); T_{k+1} = 2 l T_k - T_{k-1} on coefficient vecs.
    let mut tkm1 = vec![1.0];
    if d == 0 {
        return tkm1;
    }
    let mut tk = vec![b0, b1];
    for _ in 1..d {
        let mut next = vec![0.0; tk.len() + 1];
        for (j, &c) in tk.iter().enumerate() {
            next[j] += 2.0 * b0 * c;
            next[j + 1] += 2.0 * b1 * c;
        }
        for (j, &c) in tkm1.iter().enumerate() {
            next[j] -= c;
        }
        tkm1 = std::mem::replace(&mut tk, next);
    }
    tk
}

/// Applies the degree-`d` Chebyshev filter `T_d(ℓ(A)) x` as a single
/// SSpMV (one fused pass for FBMPK engines).
///
/// ```
/// use fbmpk::{FbmpkPlan, FbmpkOptions};
/// use fbmpk_solvers::chebyshev::{chebyshev_filter, gershgorin_bounds};
/// let a = fbmpk_sparse::Csr::from_dense(&[&[2.0, -1.0], &[-1.0, 2.0]]);
/// let engine = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
/// let (lo, hi) = gershgorin_bounds(&a);
/// let y = chebyshev_filter(&engine, &[1.0, 0.0], 4, lo.max(0.1), hi);
/// assert_eq!(y.len(), 2);
/// ```
pub fn chebyshev_filter<E: MpkEngine + ?Sized>(
    engine: &E,
    x: &[f64],
    d: usize,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    let coeffs = chebyshev_coeffs(d, lo, hi);
    engine.sspmv(&coeffs, x)
}

/// Result of the Chebyshev semi-iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChebyshevSolve {
    /// Approximate solution of `Ax = b`.
    pub x: Vec<f64>,
    /// Iterations performed (one SpMV each).
    pub iters: usize,
    /// Final relative residual `‖b - Ax‖ / ‖b‖`.
    pub relres: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// The classic three-term Chebyshev iteration for SPD `Ax = b` with
/// spectral bounds `0 < lo <= λ <= hi` (Saad, *Iterative Methods*, alg.
/// 12.1). One SpMV and no inner products per step — the textbook
/// communication-avoiding smoother.
///
/// # Errors
/// Returns [`SolverError::Breakdown`] when the residual norm goes
/// non-finite — the fixed coefficient recurrence has no way to recover
/// from a NaN/Inf iterate (bad spectral bounds or a NaN in `A`/`b`).
///
/// # Panics
/// Panics when `lo <= 0`, `hi <= lo`, or `b` has the wrong length.
pub fn chebyshev_solve<E: MpkEngine + ?Sized>(
    engine: &E,
    b: &[f64],
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
) -> Result<ChebyshevSolve, SolverError> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert_eq!(b.len(), engine.n());
    let _span = fbmpk_obs::phases::span("solve.chebyshev");
    let n = b.len();
    let theta = (hi + lo) / 2.0;
    let delta = (hi - lo) / 2.0;
    let sigma1 = theta / delta;
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut rho = 1.0 / sigma1;
    // d = (1/theta) r
    let mut dvec: Vec<f64> = r.iter().map(|&v| v / theta).collect();
    let mut relres = 1.0;
    for it in 1..=max_iters {
        let _iter = fbmpk_obs::phases::span("solve.chebyshev.iter");
        axpy(1.0, &dvec, &mut x);
        let ad = engine.spmv(&dvec);
        // r -= A d
        axpy(-1.0, &ad, &mut r);
        relres = norm2(&r) / bnorm;
        if !relres.is_finite() {
            return Err(SolverError::Breakdown { iter: it, quantity: "residual norm" });
        }
        if relres <= tol {
            return Ok(ChebyshevSolve { x, iters: it, relres, converged: true });
        }
        let rho_next = 1.0 / (2.0 * sigma1 - rho);
        // d = rho_next * rho * d + (2 rho_next / delta) * r
        let c1 = rho_next * rho;
        let c2 = 2.0 * rho_next / delta;
        axpby(c2, &r, c1, &mut dvec);
        rho = rho_next;
    }
    Ok(ChebyshevSolve { x, iters: max_iters, relres, converged: relres <= tol })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::spmv::spmv_alloc;

    fn cheb_scalar(d: usize, lo: f64, hi: f64, t: f64) -> f64 {
        // Evaluate T_d(l(t)) by the stable three-term recurrence.
        let l = (2.0 * t - (hi + lo)) / (hi - lo);
        let (mut a, mut b) = (1.0, l);
        if d == 0 {
            return a;
        }
        for _ in 1..d {
            let c = 2.0 * l * b - a;
            a = b;
            b = c;
        }
        b
    }

    #[test]
    fn gershgorin_contains_known_spectrum() {
        // 1D Laplacian: spectrum in (0, 4); Gershgorin gives [0, 4].
        let mut coo = fbmpk_sparse::Coo::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        let (lo, hi) = gershgorin_bounds(&coo.to_csr());
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 4.0);
    }

    #[test]
    fn coeffs_match_recurrence_evaluation() {
        let (lo, hi) = (0.5, 4.0);
        for d in 0..=8 {
            let c = chebyshev_coeffs(d, lo, hi);
            assert_eq!(c.len(), d + 1);
            for &t in &[0.5, 1.0, 2.7, 4.0, 5.5] {
                let direct = cheb_scalar(d, lo, hi, t);
                let horner: f64 = c.iter().rev().fold(0.0, |acc, &ci| acc * t + ci);
                assert!(
                    (direct - horner).abs() < 1e-9 * direct.abs().max(1.0),
                    "d={d}, t={t}: {direct} vs {horner}"
                );
            }
        }
    }

    #[test]
    fn filter_acts_diagonally_on_eigenbasis() {
        // Diagonal matrix: p(A) x is componentwise p(lambda_i) x_i.
        let a = Csr::from_dense(&[&[1.0, 0.0, 0.0], &[0.0, 2.5, 0.0], &[0.0, 0.0, 4.0]]);
        let e = StandardMpk::new(&a, 1).unwrap();
        let x = [1.0, 1.0, 1.0];
        let (lo, hi, d) = (1.0, 3.0, 6);
        let y = chebyshev_filter(&e, &x, d, lo, hi);
        for (i, &lam) in [1.0, 2.5, 4.0].iter().enumerate() {
            let want = cheb_scalar(d, lo, hi, lam);
            assert!((y[i] - want).abs() < 1e-8, "lambda={lam}: {} vs {want}", y[i]);
        }
        // Outside-interval eigenvalue is amplified (|T_d| > 1 outside),
        // inside stays bounded by 1: that's the filtering property.
        assert!(y[2].abs() > 1.0);
        assert!(y[1].abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn filter_agrees_between_engines() {
        let a = fbmpk_gen::poisson::grid2d_5pt(7, 6);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let (lo, hi) = gershgorin_bounds(&a);
        let std = StandardMpk::new(&a, 1).unwrap();
        let fb = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let y1 = chebyshev_filter(&std, &x, 7, lo.max(0.1), hi);
        let y2 = chebyshev_filter(&fb, &x, 7, lo.max(0.1), hi);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-9 * u.abs().max(1.0));
        }
    }

    #[test]
    fn semi_iteration_solves_spd_system() {
        let a = fbmpk_gen::poisson::grid2d_5pt(8, 8);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = spmv_alloc(&a, &x_true);
        // 2D Laplacian bounds: (0, 8); use a positive lower bound.
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = chebyshev_solve(&e, &b, 0.1, 8.0, 1e-10, 2000).unwrap();
        assert!(sol.converged, "relres {}", sol.relres);
        for (u, v) in sol.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn tighter_bounds_converge_faster() {
        let a = fbmpk_gen::poisson::grid2d_5pt(8, 8);
        let b = vec![1.0; a.nrows()];
        let e = StandardMpk::new(&a, 1).unwrap();
        let loose = chebyshev_solve(&e, &b, 0.01, 8.0, 1e-8, 5000).unwrap();
        let tight = chebyshev_solve(&e, &b, 0.1, 7.7, 1e-8, 5000).unwrap();
        assert!(tight.iters < loose.iters, "tight {} loose {}", tight.iters, loose.iters);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn nonpositive_lower_bound_rejected() {
        let a = Csr::identity(2);
        let e = StandardMpk::new(&a, 1).unwrap();
        let _ = chebyshev_solve(&e, &[1.0, 1.0], 0.0, 2.0, 1e-8, 10);
    }

    #[test]
    fn nan_rhs_is_typed_breakdown() {
        let a = Csr::identity(2);
        let e = StandardMpk::new(&a, 1).unwrap();
        match chebyshev_solve(&e, &[f64::NAN, 1.0], 0.5, 2.0, 1e-8, 10) {
            Err(SolverError::Breakdown { iter: 1, quantity: "residual norm" }) => {}
            other => panic!("expected breakdown at iter 1, got {other:?}"),
        }
    }
}
