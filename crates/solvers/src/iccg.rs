//! Incomplete-Cholesky preconditioned CG (ICCG).
//!
//! ABMC — the reordering FBMPK adopts — was invented for "parallel
//! multi-threaded sparse triangular solver in ICCG method" (Iwashita et
//! al., the FBMPK paper's ref. \[23\]). This module closes that loop:
//! IC(0) factorization on the `A = L + D + U` split, the `M⁻¹ = (L̃ᵀ)⁻¹
//! D̃⁻¹ L̃⁻¹`-style preconditioner application via the trisolve substrate,
//! and PCG. Preconditioned iteration counts drop well below plain CG on
//! the SPD suite matrices — the property the integration tests assert.

use fbmpk::MpkEngine;
use fbmpk_sparse::trisolve::{solve_lower, solve_lower_transpose};
use fbmpk_sparse::vecops::{axpy, dot, norm2};
use fbmpk_sparse::{Csr, TriangularSplit};

/// An IC(0) factorization `A ≈ L̃ L̃ᵀ`, stored as the strict lower factor
/// plus its diagonal.
#[derive(Debug, Clone)]
pub struct Ic0 {
    /// Strict lower part of `L̃` (unit pattern of `tril(A)`).
    pub lower: Csr,
    /// Diagonal of `L̃`.
    pub diag: Vec<f64>,
}

/// Errors from the IC(0) factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum Ic0Error {
    /// A pivot became non-positive at the given row; the matrix is not
    /// (numerically) positive definite on this pattern.
    NonPositivePivot {
        /// Row where factorization broke down.
        row: usize,
        /// Offending pivot value.
        pivot: f64,
    },
}

impl std::fmt::Display for Ic0Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ic0Error::NonPositivePivot { row, pivot } => {
                write!(f, "IC(0) pivot {pivot} <= 0 at row {row}")
            }
        }
    }
}

impl std::error::Error for Ic0Error {}

impl Ic0 {
    /// Computes IC(0) of a symmetric positive-definite matrix: the
    /// Cholesky recurrence restricted to the sparsity pattern of
    /// `tril(A)` (no fill).
    ///
    /// # Errors
    /// Returns [`Ic0Error::NonPositivePivot`] when a pivot is non-positive
    /// (matrix not SPD, or the no-fill approximation broke down).
    ///
    /// # Panics
    /// Panics for non-square input.
    pub fn factor(a: &Csr) -> Result<Self, Ic0Error> {
        assert_eq!(a.nrows(), a.ncols(), "IC(0) needs a square matrix");
        let split = TriangularSplit::split(a).expect("square matrix splits");
        let n = split.n();
        let l = &split.lower;
        // Factor values in the L pattern; diagonal separately.
        let mut lval: Vec<f64> = l.values().to_vec();
        let mut dval = vec![0.0f64; n];
        // Row-by-row IC(0):
        //   l[r][c] = (a[r][c] - sum_{k<c, k in both rows} l[r][k] l[c][k]) / d[c]
        //   d[r]    = sqrt(a[r][r] - sum_{k<r} l[r][k]^2)
        for r in 0..n {
            let (rs, re) = (l.row_ptr()[r], l.row_ptr()[r + 1]);
            for j in rs..re {
                let c = l.col_idx()[j] as usize;
                let mut s = lval[j]; // a[r][c] initially
                                     // Sparse dot of rows r and c of the factor (columns < c).
                let (cs, ce) = (l.row_ptr()[c], l.row_ptr()[c + 1]);
                let (mut pj, mut pk) = (rs, cs);
                while pj < j && pk < ce {
                    let cj = l.col_idx()[pj];
                    let ck = l.col_idx()[pk];
                    match cj.cmp(&ck) {
                        std::cmp::Ordering::Less => pj += 1,
                        std::cmp::Ordering::Greater => pk += 1,
                        std::cmp::Ordering::Equal => {
                            s -= lval[pj] * lval[pk];
                            pj += 1;
                            pk += 1;
                        }
                    }
                }
                lval[j] = s / dval[c];
            }
            let mut p = split.diag[r];
            for v in &lval[rs..re] {
                p -= v * v;
            }
            if p <= 0.0 {
                return Err(Ic0Error::NonPositivePivot { row: r, pivot: p });
            }
            dval[r] = p.sqrt();
        }
        let lower = Csr::from_raw_parts(n, n, l.row_ptr().to_vec(), l.col_idx().to_vec(), lval)
            .expect("factor shares the validated pattern of tril(A)");
        Ok(Ic0 { lower, diag: dval })
    }

    /// Applies the preconditioner: `z = (L̃ L̃ᵀ)⁻¹ r` via one forward and
    /// one transpose-backward solve.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.diag.len());
        assert_eq!(z.len(), self.diag.len());
        z.copy_from_slice(r);
        solve_lower(&self.lower, &self.diag, z);
        solve_lower_transpose(&self.lower, &self.diag, z);
    }

    /// Reconstructs `L̃ L̃ᵀ` densely (tests only; O(n²)).
    pub fn reconstruct_dense(&self) -> Vec<Vec<f64>> {
        let n = self.diag.len();
        // Dense L~ including diagonal.
        let mut lf = vec![vec![0.0; n]; n];
        for (r, row) in lf.iter_mut().enumerate() {
            row[r] = self.diag[r];
        }
        for (r, c, v) in self.lower.iter() {
            lf[r][c] = v;
        }
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for (a, b) in lf[i].iter().zip(&lf[j]) {
                    s += a * b;
                }
                m[i][j] = s;
            }
        }
        m
    }
}

/// Result of an ICCG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IccgResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// PCG iterations.
    pub iters: usize,
    /// Final relative residual.
    pub relres: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Preconditioned CG with the IC(0) preconditioner (zero initial guess).
///
/// # Panics
/// Panics when dimensions disagree.
pub fn iccg<E: MpkEngine + ?Sized>(
    engine: &E,
    ic: &Ic0,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> IccgResult {
    let n = engine.n();
    assert_eq!(b.len(), n);
    assert_eq!(ic.diag.len(), n);
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return IccgResult { x: vec![0.0; n], iters: 0, relres: 0.0, converged: true };
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    ic.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    for it in 1..=max_iters {
        let ap = engine.spmv(&p);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return IccgResult { x, iters: it - 1, relres: norm2(&r) / bnorm, converged: false };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let relres = norm2(&r) / bnorm;
        if relres <= tol {
            return IccgResult { x, iters: it, relres, converged: true };
        }
        ic.apply(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        rz = rz_new;
    }
    IccgResult { x, iters: max_iters, relres: norm2(&r) / bnorm, converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstep::conjugate_gradient;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::spmv::spmv_alloc;
    use fbmpk_sparse::vecops::rel_err_inf;

    #[test]
    fn ic0_of_tridiagonal_is_exact_cholesky() {
        // Tridiagonal matrices have no fill: IC(0) == exact Cholesky.
        let n = 12;
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let ic = Ic0::factor(&a).unwrap();
        let m = ic.reconstruct_dense();
        let ad = a.to_dense();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (m[i][j] - ad[i][j]).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    m[i][j],
                    ad[i][j]
                );
            }
        }
    }

    #[test]
    fn preconditioner_application_is_exact_inverse_for_no_fill_pattern() {
        // On a no-fill matrix, M = A exactly, so z = A^{-1} r and PCG
        // converges in one iteration.
        let n = 20;
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let ic = Ic0::factor(&a).unwrap();
        let e = StandardMpk::new(&a, 1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) - 1.0).collect();
        let sol = iccg(&e, &ic, &b, 1e-12, 5);
        assert!(sol.converged);
        assert!(sol.iters <= 2, "took {} iterations", sol.iters);
    }

    #[test]
    fn iccg_beats_plain_cg_on_poisson() {
        let a = fbmpk_gen::poisson::grid2d_5pt(20, 20);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) / 8.0 - 1.0).collect();
        let b = spmv_alloc(&a, &x_true);
        let e = StandardMpk::new(&a, 1).unwrap();
        let ic = Ic0::factor(&a).unwrap();
        let pcg = iccg(&e, &ic, &b, 1e-10, 5000);
        let cg = conjugate_gradient(&e, &b, 1e-10, 5000);
        assert!(pcg.converged && cg.converged);
        assert!(pcg.iters * 2 < cg.iters, "ICCG {} vs CG {} iterations", pcg.iters, cg.iters);
        assert!(rel_err_inf(&pcg.x, &x_true) < 1e-7);
    }

    #[test]
    fn iccg_on_fbmpk_engine_and_suite_matrix() {
        let a = fbmpk_gen::suite::suite_entry("afshell10").unwrap().generate(0.0008, 5);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).sin()).collect();
        let ic = Ic0::factor(&a).unwrap();
        let e = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let sol = iccg(&e, &ic, &b, 1e-10, 3000);
        assert!(sol.converged, "relres {}", sol.relres);
        let res: Vec<f64> = {
            let ax = e.spmv(&sol.x);
            b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect()
        };
        assert!(norm2(&res) / norm2(&b) < 1e-9);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Csr::from_dense(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match Ic0::factor(&a) {
            Err(Ic0Error::NonPositivePivot { row, .. }) => assert_eq!(row, 1),
            other => panic!("expected pivot failure, got {other:?}"),
        }
    }
}
