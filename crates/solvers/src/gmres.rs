//! Restarted GMRES (Saad & Schultz 1986).
//!
//! The general-purpose Krylov solver for the suite's unsymmetric members:
//! Arnoldi with modified Gram–Schmidt builds the basis (one SpMV per
//! inner step — the loop MPK-style kernels batch), Givens rotations
//! maintain the QR of the Hessenberg matrix, and the method restarts every
//! `m` steps to bound memory.

use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{axpy, dot, norm2, scale};

/// Result of a GMRES solve.
#[derive(Debug, Clone, PartialEq)]
pub struct GmresResult {
    /// Approximate solution of `Ax = b`.
    pub x: Vec<f64>,
    /// Total inner iterations (SpMVs).
    pub iters: usize,
    /// Restart cycles used.
    pub restarts: usize,
    /// Final relative residual.
    pub relres: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Solves `Ax = b` with GMRES(m) from a zero initial guess.
///
/// # Panics
/// Panics when `m == 0` or `b.len() != engine.n()`.
pub fn gmres<E: MpkEngine + ?Sized>(
    engine: &E,
    b: &[f64],
    m: usize,
    tol: f64,
    max_iters: usize,
) -> GmresResult {
    assert!(m >= 1, "restart length must be positive");
    let n = engine.n();
    assert_eq!(b.len(), n);
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return GmresResult {
            x: vec![0.0; n],
            iters: 0,
            restarts: 0,
            relres: 0.0,
            converged: true,
        };
    }
    let mut x = vec![0.0; n];
    let mut total_iters = 0usize;
    let mut restarts = 0usize;
    loop {
        let mut r = crate::util::residual(engine, b, &x);
        let beta = norm2(&r);
        let relres = beta / bnorm;
        if relres <= tol {
            return GmresResult { x, iters: total_iters, restarts, relres, converged: true };
        }
        if total_iters >= max_iters {
            return GmresResult { x, iters: total_iters, restarts, relres, converged: false };
        }
        scale(1.0 / beta, &mut r);
        let mut basis: Vec<Vec<f64>> = vec![r];
        // Hessenberg stored column-wise: h[j] has j+2 entries.
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(m);
        // Givens rotations and the rotated rhs g.
        let mut cs: Vec<f64> = Vec::with_capacity(m);
        let mut sn: Vec<f64> = Vec::with_capacity(m);
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k = 0usize; // columns completed this cycle
        for j in 0..m {
            if total_iters >= max_iters {
                break;
            }
            let mut w = engine.spmv(&basis[j]);
            total_iters += 1;
            // Modified Gram–Schmidt.
            let mut hj = vec![0.0f64; j + 2];
            for (i, q) in basis.iter().enumerate() {
                hj[i] = dot(&w, q);
                axpy(-hj[i], q, &mut w);
            }
            let wnorm = norm2(&w);
            hj[j + 1] = wnorm;
            // Apply previous rotations to entries 0..=j of the new column
            // (the subdiagonal entry j+1 is untouched by them).
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation annihilating the subdiagonal. A fully zero
            // column (denom == 0) would plant a zero pivot and poison the
            // back-substitution with Inf/NaN, so stop the cycle before
            // accepting it: the Krylov space is exhausted.
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            if denom == 0.0 {
                break;
            }
            let (c, s) = (hj[j] / denom, hj[j + 1] / denom);
            cs.push(c);
            sn.push(s);
            hj[j] = denom;
            hj[j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            h.push(hj);
            k = j + 1;
            let inner_relres = g[j + 1].abs() / bnorm;
            if inner_relres <= tol || wnorm == 0.0 {
                // Converged inside the cycle, or a lucky breakdown
                // (invariant subspace reached).
                break;
            }
            scale(1.0 / wnorm, &mut w);
            basis.push(w);
        }
        // Back-substitute y from the k x k triangular system.
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut s = g[i];
            for (jj, hcol) in h.iter().enumerate().skip(i + 1) {
                s -= hcol[i] * y[jj];
            }
            y[i] = s / h[i][i];
        }
        for (j, &yj) in y.iter().enumerate() {
            axpy(yj, &basis[j], &mut x);
        }
        restarts += 1;
        if total_iters >= max_iters {
            let relres = crate::util::residual_norm(engine, b, &x) / bnorm;
            return GmresResult {
                x,
                iters: total_iters,
                restarts,
                relres,
                converged: relres <= tol,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::spmv::spmv_alloc;
    use fbmpk_sparse::vecops::rel_err_inf;
    use fbmpk_sparse::Csr;

    fn shifted_cage(n: usize) -> Csr {
        let a =
            fbmpk_gen::cage::cage_like(fbmpk_gen::cage::CageParams { n, neighbors: 18, seed: 6 });
        let nn = a.nrows();
        let mut coo = fbmpk_sparse::Coo::new(nn, nn);
        for (r, c, v) in a.iter() {
            coo.push(r, c, -v).unwrap();
        }
        for i in 0..nn {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn solves_unsymmetric_system() {
        let a = shifted_cage(600);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = spmv_alloc(&a, &x_true);
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = gmres(&e, &b, 30, 1e-11, 5000);
        assert!(sol.converged, "relres {}", sol.relres);
        assert!(rel_err_inf(&sol.x, &x_true) < 1e-8);
    }

    #[test]
    fn restarting_still_converges() {
        // Small restart window forces multiple cycles.
        let a = shifted_cage(400);
        let n = a.nrows();
        let b = vec![1.0; n];
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = gmres(&e, &b, 5, 1e-10, 10_000);
        assert!(sol.converged, "relres {}", sol.relres);
        assert!(sol.restarts >= 1);
    }

    #[test]
    fn engines_agree() {
        let a = fbmpk_gen::poisson::grid2d_5pt(8, 8);
        let b: Vec<f64> = (0..64).map(|i| ((i % 5) as f64) - 2.0).collect();
        let e1 = StandardMpk::new(&a, 1).unwrap();
        let e2 = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let s1 = gmres(&e1, &b, 20, 1e-10, 2000);
        let s2 = gmres(&e2, &b, 20, 1e-10, 2000);
        assert!(s1.converged && s2.converged);
        assert!(rel_err_inf(&s1.x, &s2.x) < 1e-8);
    }

    #[test]
    fn identity_converges_immediately() {
        let a = Csr::identity(7);
        let e = StandardMpk::new(&a, 1).unwrap();
        let b = vec![3.0; 7];
        let sol = gmres(&e, &b, 10, 1e-12, 100);
        assert!(sol.converged);
        assert!(sol.iters <= 2);
        assert!(rel_err_inf(&sol.x, &b) < 1e-12);
    }

    #[test]
    fn zero_rhs_trivial() {
        let a = Csr::identity(4);
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = gmres(&e, &[0.0; 4], 10, 1e-12, 10);
        assert!(sol.converged);
        assert_eq!(sol.iters, 0);
    }
}
