//! s-step Krylov bases and a conjugate-gradient reference solver.
//!
//! Communication-avoiding Krylov methods (Demmel/Hoemmen/Carson, cited in
//! the paper's related work) replace `s` sequential SpMVs with one
//! matrix-powers kernel producing a basis of `K_{s+1}(A, v)`. The basis
//! generation below is the MPK call; CG is the baseline solver the bases
//! are validated against.

use fbmpk::MpkEngine;
use fbmpk_sparse::vecops::{axpy, dot, norm2};

/// Monomial s-step basis `[v, Av, A²v, …, Aˢv]` via one Krylov MPK call.
pub fn sstep_basis_monomial<E: MpkEngine + ?Sized>(
    engine: &E,
    v: &[f64],
    s: usize,
) -> Vec<Vec<f64>> {
    assert_eq!(v.len(), engine.n());
    let mut basis = Vec::with_capacity(s + 1);
    basis.push(v.to_vec());
    basis.extend(engine.krylov(v, s));
    basis
}

/// Newton s-step basis `z_{j+1} = (A - θ_j I) z_j` — the better-conditioned
/// variant used by s-step Lanczos/CG (Carson et al. 2016). Each application
/// is the SSpMV `(A - θI) z = 1·Az + (-θ)·z`, i.e. one fused FBMPK pass.
///
/// # Panics
/// Panics when `shifts.len() < s`.
pub fn sstep_basis_newton<E: MpkEngine + ?Sized>(
    engine: &E,
    v: &[f64],
    s: usize,
    shifts: &[f64],
) -> Vec<Vec<f64>> {
    assert!(shifts.len() >= s, "need one shift per basis step");
    assert_eq!(v.len(), engine.n());
    let mut basis = Vec::with_capacity(s + 1);
    basis.push(v.to_vec());
    for &theta in &shifts[..s] {
        let prev = basis.last().expect("nonempty");
        // (A - theta I) prev = -theta * A^0 prev + 1 * A^1 prev.
        let next = engine.sspmv(&[-theta, 1.0], prev);
        basis.push(next);
    }
    basis
}

/// Gram matrix `G[i][j] = ⟨basis_i, basis_j⟩` — the quantity s-step methods
/// compute once per block to replace per-iteration inner products.
pub fn gram(basis: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let m = basis.len();
    let mut g = vec![vec![0.0; m]; m];
    for i in 0..m {
        for j in i..m {
            let v = dot(&basis[i], &basis[j]);
            g[i][j] = v;
            g[j][i] = v;
        }
    }
    g
}

/// Result of conjugate gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Approximate solution of `Ax = b`.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Final relative residual.
    pub relres: f64,
    /// Whether `tol` was reached.
    pub converged: bool,
}

/// Plain conjugate gradients for SPD `Ax = b` (zero initial guess).
///
/// ```
/// use fbmpk::StandardMpk;
/// use fbmpk_solvers::sstep::conjugate_gradient;
/// let a = fbmpk_gen::poisson::grid2d_5pt(4, 4);
/// let engine = StandardMpk::new(&a, 1).unwrap();
/// let sol = conjugate_gradient(&engine, &vec![1.0; 16], 1e-10, 1000);
/// assert!(sol.converged);
/// ```
///
/// # Panics
/// Panics when `b` has the wrong length.
pub fn conjugate_gradient<E: MpkEngine + ?Sized>(
    engine: &E,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> CgResult {
    assert_eq!(b.len(), engine.n());
    let n = b.len();
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return CgResult { x: vec![0.0; n], iters: 0, relres: 0.0, converged: true };
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    for it in 1..=max_iters {
        let ap = engine.spmv(&p);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or breakdown): stop with what we have.
            return CgResult { x, iters: it - 1, relres: rr.sqrt() / bnorm, converged: false };
        }
        let alpha = rr / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        let relres = rr_new.sqrt() / bnorm;
        if relres <= tol {
            return CgResult { x, iters: it, relres, converged: true };
        }
        let beta = rr_new / rr;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rr = rr_new;
    }
    CgResult { x, iters: max_iters, relres: rr.sqrt() / bnorm, converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
    use fbmpk_sparse::spmv::spmv_alloc;

    fn spd() -> fbmpk_sparse::Csr {
        fbmpk_gen::poisson::grid2d_5pt(9, 7)
    }

    #[test]
    fn monomial_basis_matches_repeated_spmv() {
        let a = spd();
        let n = a.nrows();
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let e = StandardMpk::new(&a, 1).unwrap();
        let basis = sstep_basis_monomial(&e, &v, 4);
        assert_eq!(basis.len(), 5);
        let mut cur = v.clone();
        for (j, bj) in basis.iter().enumerate() {
            if j > 0 {
                cur = spmv_alloc(&a, &cur);
            }
            for (u, w) in bj.iter().zip(&cur) {
                assert!((u - w).abs() < 1e-10 * w.abs().max(1.0), "basis vector {j}");
            }
        }
    }

    #[test]
    fn newton_basis_satisfies_recurrence() {
        let a = spd();
        let n = a.nrows();
        let v: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let e = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let shifts = [1.0, 3.5, 6.0, 2.0];
        let basis = sstep_basis_newton(&e, &v, 4, &shifts);
        for j in 0..4 {
            let az = spmv_alloc(&a, &basis[j]);
            for r in 0..n {
                let want = az[r] - shifts[j] * basis[j][r];
                assert!(
                    (basis[j + 1][r] - want).abs() < 1e-10 * want.abs().max(1.0),
                    "step {j} row {r}"
                );
            }
        }
    }

    #[test]
    fn newton_basis_better_conditioned_than_monomial() {
        // Conditioning proxy: ratio of largest/smallest diagonal Gram
        // entries grows much faster for the monomial basis.
        let a = spd();
        let n = a.nrows();
        let v = vec![1.0; n];
        let e = StandardMpk::new(&a, 1).unwrap();
        let s = 6;
        let mono = sstep_basis_monomial(&e, &v, s);
        // Shifts spread over the spectrum (Leja-ish for [0, 8]).
        let shifts = [4.0, 7.5, 0.5, 6.0, 2.0, 5.0];
        let newt = sstep_basis_newton(&e, &v, s, &shifts);
        let growth = |basis: &[Vec<f64>]| {
            let g = gram(basis);
            let d: Vec<f64> = (0..basis.len()).map(|i| g[i][i]).collect();
            d.iter().cloned().fold(0.0f64, f64::max) / d.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(growth(&newt) < growth(&mono), "newton {} mono {}", growth(&newt), growth(&mono));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = spd();
        let e = StandardMpk::new(&a, 1).unwrap();
        let v = vec![1.0; a.nrows()];
        let basis = sstep_basis_monomial(&e, &v, 3);
        let g = gram(&basis);
        for (i, row) in g.iter().enumerate() {
            assert!(row[i] > 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, g[j][i]);
            }
        }
    }

    #[test]
    fn cg_solves_poisson() {
        let a = spd();
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3 % 11) as f64) - 5.0).collect();
        let b = spmv_alloc(&a, &x_true);
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = conjugate_gradient(&e, &b, 1e-12, 10 * n);
        assert!(sol.converged);
        for (u, v) in sol.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_engines_agree() {
        let a = spd();
        let b = vec![1.0; a.nrows()];
        let e1 = StandardMpk::new(&a, 1).unwrap();
        let e2 = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let s1 = conjugate_gradient(&e1, &b, 1e-10, 5000);
        let s2 = conjugate_gradient(&e2, &b, 1e-10, 5000);
        assert!(s1.converged && s2.converged);
        assert_eq!(s1.iters, s2.iters);
        for (u, v) in s1.x.iter().zip(&s2.x) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_zero_rhs_trivial() {
        let a = spd();
        let e = StandardMpk::new(&a, 1).unwrap();
        let sol = conjugate_gradient(&e, &vec![0.0; a.nrows()], 1e-12, 10);
        assert!(sol.converged);
        assert_eq!(sol.iters, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }
}
