//! Quickstart: build a sparse matrix, plan an FBMPK, and compare it with
//! the standard matrix-power kernel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
use fbmpk_sparse::vecops::rel_err_inf;

fn main() {
    // A 2-D Poisson matrix: the "hello world" of sparse linear algebra.
    let a = fbmpk_gen::poisson::grid2d_5pt(64, 64);
    let n = a.nrows();
    println!("matrix: {}", fbmpk_sparse::stats::MatrixStats::compute(&a));

    let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let k = 5;

    // The baseline: k sequential SpMVs (paper Algorithm 1).
    let baseline = StandardMpk::new(&a, 1).expect("square matrix");
    let t0 = std::time::Instant::now();
    let want = baseline.power(&x0, k);
    let t_base = t0.elapsed();

    // FBMPK, serial pipeline with back-to-back vectors. (On a multicore
    // host, use `FbmpkOptions::parallel(n)` for the ABMC-colored parallel
    // pipeline instead.)
    let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).expect("square matrix");
    let t0 = std::time::Instant::now();
    let got = plan.power(&x0, k);
    let t_fb = t0.elapsed();

    println!("A^{k} x0: baseline {t_base:?}, fbmpk {t_fb:?}");
    println!("max relative difference: {:.3e}", rel_err_inf(&got, &want));
    assert!(rel_err_inf(&got, &want) < 1e-10, "kernels disagree");

    // Generic SSpMV: y = x0 - 2 A x0 + A^3 x0 in a single fused pass.
    let y = plan.sspmv(&[1.0, -2.0, 0.0, 1.0], &x0);
    println!("sspmv  y = x0 - 2Ax0 + A^3x0: ||y||_inf = {:.6}", fbmpk_sparse::vecops::norm_inf(&y));
    println!("ok.");
}
