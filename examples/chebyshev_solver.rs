//! Linear-equation workload (paper §I: "solving linear equations"):
//! solve an SPD system with the Chebyshev semi-iteration and apply a
//! Chebyshev polynomial filter as one fused SSpMV.
//!
//! ```text
//! cargo run --release --example chebyshev_solver
//! ```

use fbmpk::{FbmpkOptions, FbmpkPlan, MpkEngine};
use fbmpk_solvers::chebyshev::{chebyshev_filter, chebyshev_solve, gershgorin_bounds};
use fbmpk_sparse::spmv::spmv_alloc;
use fbmpk_sparse::vecops::{norm2, rel_err_inf};

fn main() {
    // af_shell10 analog: banded symmetric SPD.
    let entry = fbmpk_gen::suite::suite_entry("afshell10").expect("known matrix");
    let a = entry.generate(0.003, 11);
    let n = a.nrows();
    println!("matrix ({}): {}", entry.name, fbmpk_sparse::stats::MatrixStats::compute(&a));

    let (lo, hi) = gershgorin_bounds(&a);
    // The generators are strictly diagonally dominant, so lo > 0.
    println!("Gershgorin spectral bounds: [{lo:.4}, {hi:.4}]");
    assert!(lo > 0.0, "generator guarantees SPD");

    // Manufacture a solution and right-hand side.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
    let b = spmv_alloc(&a, &x_true);

    let engine = FbmpkPlan::new(&a, FbmpkOptions::parallel(2)).expect("square");
    let t0 = std::time::Instant::now();
    let sol =
        chebyshev_solve(&engine, &b, lo, hi, 1e-10, 50_000).expect("no breakdown on SPD input");
    println!(
        "Chebyshev semi-iteration: {} iters, relres {:.3e}, {:?}, error {:.3e}",
        sol.iters,
        sol.relres,
        t0.elapsed(),
        rel_err_inf(&sol.x, &x_true)
    );
    assert!(sol.converged, "solver must converge on an SPD system");

    // Polynomial filtering: amplify the top of the spectrum — the
    // ChASE/EVSL building block. Gershgorin's `hi` overestimates λ_max, so
    // anchor the filter's damped interval at a power-iteration estimate;
    // eigenvalues above `0.95 λ_max` then fall outside the interval and
    // are amplified. The whole degree-8 polynomial is evaluated by ONE
    // FBMPK sspmv call.
    let x0: Vec<f64> = (0..n).map(|i| ((i * 31 % 101) as f64 / 50.0) - 1.0).collect();
    let lam_max = fbmpk_solvers::power::power_iteration(&engine, &x0, 4, 1e-8, 50_000).eigenvalue;
    println!("power-iteration lambda_max estimate: {lam_max:.4} (Gershgorin said {hi:.4})");
    let filtered = chebyshev_filter(&engine, &x0, 8, lo, 0.95 * lam_max);
    println!(
        "degree-8 Chebyshev filter: ||x0|| = {:.4} -> ||p(A)x0|| = {:.4}",
        norm2(&x0),
        norm2(&filtered)
    );
    // Rayleigh quotient of the filtered vector must move toward the top of
    // the spectrum (that is what the filter is for).
    let rq = |v: &[f64]| {
        let av = engine.spmv(v);
        fbmpk_sparse::vecops::dot(v, &av) / fbmpk_sparse::vecops::dot(v, v)
    };
    println!("Rayleigh quotient: before {:.4}, after {:.4}", rq(&x0), rq(&filtered));
    assert!(rq(&filtered) > rq(&x0), "filter must push energy toward the top eigenpairs");
    println!("ok.");
}
