//! Eigenvalue workload (paper §I: "solving eigenvalue problems"):
//! dominant eigenvalue of a structural FEM matrix by blocked power
//! iteration, with the matrix powers computed by FBMPK.
//!
//! ```text
//! cargo run --release --example eigen_power
//! ```

use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
use fbmpk_solvers::power::power_iteration;

fn main() {
    // audikw_1 analog at small scale: 3x3-block FEM, symmetric.
    let entry = fbmpk_gen::suite::suite_entry("audikw_1").expect("known matrix");
    let a = entry.generate(0.003, 7);
    let n = a.nrows();
    println!("matrix ({}): {}", entry.name, fbmpk_sparse::stats::MatrixStats::compute(&a));

    let x0: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64 * 0.01).collect();
    let s = 6; // matrix powers per outer step — one FBMPK call each

    let std_engine = StandardMpk::new(&a, 1).expect("square");
    let t0 = std::time::Instant::now();
    let r_std = power_iteration(&std_engine, &x0, s, 1e-10, 20_000);
    let t_std = t0.elapsed();

    let fb_engine = FbmpkPlan::new(&a, FbmpkOptions::parallel(2)).expect("square");
    let t0 = std::time::Instant::now();
    let r_fb = power_iteration(&fb_engine, &x0, s, 1e-10, 20_000);
    let t_fb = t0.elapsed();

    println!(
        "standard MPK : lambda_max = {:.9} ({} matvecs, {t_std:?}, converged: {})",
        r_std.eigenvalue, r_std.matvecs, r_std.converged
    );
    println!(
        "FBMPK        : lambda_max = {:.9} ({} matvecs, {t_fb:?}, converged: {})",
        r_fb.eigenvalue, r_fb.matvecs, r_fb.converged
    );
    let diff = (r_std.eigenvalue - r_fb.eigenvalue).abs() / r_std.eigenvalue.abs();
    println!("relative disagreement: {diff:.3e}");
    assert!(diff < 1e-6, "engines must agree");

    // Sanity: Gershgorin upper bound dominates the estimate.
    let (_, hi) = fbmpk_solvers::chebyshev::gershgorin_bounds(&a);
    println!("Gershgorin upper bound: {hi:.6} (estimate must not exceed it)");
    assert!(r_fb.eigenvalue <= hi + 1e-9);
    println!("ok.");
}
