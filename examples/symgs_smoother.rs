//! SYMGS on the FBMPK machinery (paper §III-A / §VII: the forward–backward
//! sweeps share their structure with symmetric Gauss–Seidel, the HPCG
//! smoother). This example runs SYMGS as a stationary solver on a suite
//! matrix and compares its convergence against the Chebyshev semi-iteration
//! and plain CG, all driven through the same plan.
//!
//! ```text
//! cargo run --release --example symgs_smoother
//! ```

use fbmpk::{FbmpkOptions, FbmpkPlan};
use fbmpk_solvers::chebyshev::{chebyshev_solve, gershgorin_bounds};
use fbmpk_solvers::sstep::conjugate_gradient;
use fbmpk_sparse::spmv::spmv_alloc;
use fbmpk_sparse::vecops::norm2;

fn main() {
    let entry = fbmpk_gen::suite::suite_entry("Hook_1498").expect("known matrix");
    let a = entry.generate(0.002, 17);
    let n = a.nrows();
    println!("matrix ({}): {}", entry.name, fbmpk_sparse::stats::MatrixStats::compute(&a));

    let plan = FbmpkPlan::new(&a, FbmpkOptions::parallel(2)).expect("square");
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) / 6.0 - 1.0).collect();
    let b = spmv_alloc(&a, &x_true);
    let bnorm = norm2(&b);
    let tol = 1e-8;

    // SYMGS stationary iteration: one colored forward+backward sweep per
    // step, exactly the FBMPK sweep structure.
    let t0 = std::time::Instant::now();
    let mut x = vec![0.0; n];
    let mut sweeps = 0;
    let relres = loop {
        plan.symgs_sweep(&b, &mut x);
        sweeps += 1;
        let r: Vec<f64> = spmv_alloc(&a, &x).iter().zip(&b).map(|(ax, bi)| bi - ax).collect();
        let rr = norm2(&r) / bnorm;
        if rr <= tol || sweeps >= 10_000 {
            break rr;
        }
    };
    println!("SYMGS      : {sweeps} sweeps, relres {relres:.2e}, {:?}", t0.elapsed());
    assert!(relres <= tol, "SYMGS must converge on this SPD system");

    // Chebyshev semi-iteration with Gershgorin bounds.
    let (lo, hi) = gershgorin_bounds(&a);
    let t0 = std::time::Instant::now();
    let ch = chebyshev_solve(&plan, &b, lo.max(1e-3), hi, tol, 100_000)
        .expect("no breakdown on SPD input");
    println!("Chebyshev  : {} iters, relres {:.2e}, {:?}", ch.iters, ch.relres, t0.elapsed());

    // CG reference.
    let t0 = std::time::Instant::now();
    let cg = conjugate_gradient(&plan, &b, tol, 100_000);
    println!("CG         : {} iters, relres {:.2e}, {:?}", cg.iters, cg.relres, t0.elapsed());

    // All three agree with the manufactured solution.
    for (label, sol) in [("symgs", &x), ("chebyshev", &ch.x), ("cg", &cg.x)] {
        let err = fbmpk_sparse::vecops::rel_err_inf(sol, &x_true);
        println!("{label:<10} error vs manufactured solution: {err:.2e}");
        assert!(err < 1e-5, "{label} inaccurate");
    }
    println!("ok.");
}
