//! s-step Krylov workload (paper related work: communication-avoiding
//! Krylov methods): generate monomial and Newton bases of K_{s+1}(A, v)
//! with one matrix-powers kernel, then compare their conditioning.
//!
//! ```text
//! cargo run --release --example krylov_basis
//! ```

use fbmpk::{FbmpkOptions, FbmpkPlan};
use fbmpk_solvers::chebyshev::gershgorin_bounds;
use fbmpk_solvers::sstep::{gram, sstep_basis_monomial, sstep_basis_newton};

fn main() {
    let entry = fbmpk_gen::suite::suite_entry("Serena").expect("known matrix");
    let a = entry.generate(0.002, 3);
    let n = a.nrows();
    println!("matrix ({}): {}", entry.name, fbmpk_sparse::stats::MatrixStats::compute(&a));

    let engine = FbmpkPlan::new(&a, FbmpkOptions::parallel(2)).expect("square");
    let v: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 37) as f64)).collect();
    let s = 8;

    // Monomial basis [v, Av, ..., A^s v]: one Krylov MPK call.
    let t0 = std::time::Instant::now();
    let mono = sstep_basis_monomial(&engine, &v, s);
    println!("monomial basis ({} vectors) in {:?}", mono.len(), t0.elapsed());

    // Newton basis with shifts spread over the spectrum (Leja-like).
    let (lo, hi) = gershgorin_bounds(&a);
    let shifts: Vec<f64> =
        (0..s).map(|j| lo + (hi - lo) * ((2 * j + 1) as f64) / (2.0 * s as f64)).collect();
    let t0 = std::time::Instant::now();
    let newt = sstep_basis_newton(&engine, &v, s, &shifts);
    println!("newton basis   ({} vectors) in {:?}", newt.len(), t0.elapsed());

    // Conditioning proxy: spread of the Gram diagonal (norm growth).
    let spread = |basis: &[Vec<f64>]| {
        let g = gram(basis);
        let d: Vec<f64> = (0..basis.len()).map(|i| g[i][i].sqrt()).collect();
        d.iter().cloned().fold(0.0f64, f64::max) / d.iter().cloned().fold(f64::MAX, f64::min)
    };
    let (sm, sn) = (spread(&mono), spread(&newt));
    println!("norm spread: monomial {sm:.3e}, newton {sn:.3e}");
    assert!(sn < sm, "the Newton basis must be better scaled");
    println!("ok: the Newton basis is {}x better conditioned (by norm spread).", (sm / sn) as u64);
}
