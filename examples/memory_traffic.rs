//! Memory-traffic analysis (paper §V-C / Fig. 9): replay the standard and
//! forward-backward kernels through the cache simulator and report the
//! DRAM volume ratio, next to the paper's idealized `(k+1)/2k`.
//!
//! ```text
//! cargo run --release --example memory_traffic
//! ```

use fbmpk_memsim::{trace_fbmpk, trace_standard_mpk, TracedLayout};

fn main() {
    println!("DRAM traffic: FBMPK / standard MPK (cache simulator)\n");
    println!(
        "{:<12} {:>3} {:>14} {:>14} {:>8} {:>8}",
        "matrix", "k", "standard[B]", "fbmpk[B]", "ratio", "ideal"
    );
    for name in ["audikw_1", "G3_circuit", "ML_Geer"] {
        let entry = fbmpk_gen::suite::suite_entry(name).expect("known matrix");
        let a = entry.generate(0.004, 5);
        let llc = [fbmpk_bench::runner::scaled_llc(a.nnz() * 12 + 8 * (a.nrows() + 1))];
        for k in [3usize, 6, 9] {
            let std = trace_standard_mpk(&a, k, &llc);
            let fb = trace_fbmpk(&a, k, TracedLayout::BackToBack, &llc);
            let ratio = fb.total() as f64 / std.total() as f64;
            let ideal = fbmpk::model::ideal_ratio(k);
            println!(
                "{:<12} {:>3} {:>14} {:>14} {:>7.1}% {:>7.1}%",
                name,
                k,
                std.total(),
                fb.total(),
                ratio * 100.0,
                ideal * 100.0
            );
        }
    }
    println!(
        "\nAs in the paper: denser matrices (audikw_1, ML_Geer) approach the ideal;\n\
         the ultra-sparse G3_circuit is limited by vector traffic."
    );
}
