//! Observability invariants: the span recorder must never change the
//! numerics (recording plans are bit-identical to non-recording ones in
//! every sync mode and k parity), recorded timelines must cover every
//! (thread, color) pair of the sweep, ring-buffer overflow must degrade
//! to counted drops rather than corruption, and — in release builds —
//! the `NoopProbe` monomorphization must keep a medium FBMPK run within
//! 2% of the recording plan's upper bound (the recorder itself is cheap
//! enough that even the *enabled* path stays in the noise).

use fbmpk::{FbmpkOptions, FbmpkPlan, ObsOptions, SyncMode};
use fbmpk_obs::recorder::SpanKind;
use fbmpk_reorder::AbmcParams;

fn start(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 71 % 127) as f64) / 63.5 - 1.0).collect()
}

fn opts(threads: usize, nblocks: usize, sync: SyncMode, obs: ObsOptions) -> FbmpkOptions {
    FbmpkOptions {
        nthreads: threads,
        reorder: Some(AbmcParams { nblocks, ..Default::default() }),
        sync,
        obs,
        ..Default::default()
    }
}

#[test]
fn recording_is_bit_identical_across_modes_parities_and_threads() {
    let a = fbmpk_gen::suite::suite_entry("cant").unwrap().generate(0.002, 5);
    let n = a.nrows();
    let x0 = start(n);
    for sync in [SyncMode::ColorBarrier, SyncMode::PointToPoint] {
        for threads in [1usize, 4] {
            let plain = FbmpkPlan::new(&a, opts(threads, 48, sync, ObsOptions::default())).unwrap();
            let rec = FbmpkPlan::new(&a, opts(threads, 48, sync, ObsOptions::recording())).unwrap();
            assert!(plain.recorder().is_none());
            assert!(rec.recorder().is_some());
            // Both parities: even k ends on a backward sweep, odd k adds
            // the tail stage.
            for k in [4usize, 5] {
                assert_eq!(plain.power(&x0, k), rec.power(&x0, k), "{sync:?} t={threads} k={k}");
            }
            assert_eq!(
                plain.sspmv(&[0.5, -1.0, 0.25, 2.0], &x0),
                rec.sspmv(&[0.5, -1.0, 0.25, 2.0], &x0),
                "{sync:?} t={threads} sspmv"
            );
        }
    }
    // The serial pipeline (no reordering) records too, identically.
    let plain = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
    let rec =
        FbmpkPlan::new(&a, FbmpkOptions { obs: ObsOptions::recording(), ..Default::default() })
            .unwrap();
    for k in [4usize, 5] {
        assert_eq!(plain.power(&x0, k), rec.power(&x0, k), "serial k={k}");
    }
}

#[test]
fn recording_symgs_is_bit_identical() {
    let a = fbmpk_gen::poisson::grid2d_5pt(30, 28);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    for sync in [SyncMode::ColorBarrier, SyncMode::PointToPoint] {
        for threads in [1usize, 4] {
            let plain = FbmpkPlan::new(&a, opts(threads, 32, sync, ObsOptions::default())).unwrap();
            let rec = FbmpkPlan::new(&a, opts(threads, 32, sync, ObsOptions::recording())).unwrap();
            let mut xp = vec![0.0; n];
            let mut xr = vec![0.0; n];
            for _ in 0..3 {
                plain.symgs_sweep(&b, &mut xp);
                rec.symgs_sweep(&b, &mut xr);
            }
            assert_eq!(xp, xr, "{sync:?} t={threads}");
        }
    }
}

#[test]
fn barrier_mode_timeline_covers_every_thread_and_color() {
    let a = fbmpk_gen::suite::suite_entry("G3_circuit").unwrap().generate(0.001, 5);
    let n = a.nrows();
    let threads = 4;
    let plan =
        FbmpkPlan::new(&a, opts(threads, 48, SyncMode::ColorBarrier, ObsOptions::recording()))
            .unwrap();
    let k = 5; // odd: head + rounds + tail all present
    plan.power(&start(n), k);
    let rec = plan.recorder().unwrap();
    let ncolors = plan.stats().ncolors;
    assert!(ncolors > 1);
    for t in 0..threads {
        let spans = rec.thread_spans(t);
        assert!(!spans.is_empty(), "thread {t} recorded nothing");
        assert!(spans.iter().any(|s| s.kind == SpanKind::Head), "thread {t} missing head");
        assert!(spans.iter().any(|s| s.kind == SpanKind::Tail), "thread {t} missing tail");
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::BarrierWait),
            "thread {t} missing barrier waits"
        );
        for c in 0..ncolors as u32 {
            for kind in [SpanKind::Forward, SpanKind::Backward] {
                assert!(
                    spans.iter().any(|s| s.kind == kind && s.color == c),
                    "thread {t} missing {kind:?} span for color {c}"
                );
            }
        }
        // Timestamps are monotone per lane and spans are well-formed.
        for w in spans.windows(2) {
            assert!(w[1].start_ns >= w[0].start_ns, "thread {t} out-of-order spans");
        }
        assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
    }
    assert_eq!(rec.total_dropped(), 0);
    let frac = rec.wait_fraction();
    assert!((0.0..=1.0).contains(&frac), "wait fraction {frac}");
}

#[test]
fn p2p_mode_records_flag_waits_and_block_spans() {
    let a = fbmpk_gen::suite::suite_entry("cant").unwrap().generate(0.002, 5);
    let n = a.nrows();
    let threads = 4;
    let plan =
        FbmpkPlan::new(&a, opts(threads, 48, SyncMode::PointToPoint, ObsOptions::recording()))
            .unwrap();
    plan.power(&start(n), 4);
    let rec = plan.recorder().unwrap();
    let all: Vec<_> = (0..threads).flat_map(|t| rec.thread_spans(t)).collect();
    assert!(all.iter().any(|s| s.kind == SpanKind::FlagWait), "no flag-wait spans");
    // Point-to-point compute spans carry block ids.
    assert!(all
        .iter()
        .any(|s| s.kind == SpanKind::Forward && s.block != fbmpk_obs::recorder::Span::NO_ID));
    assert!(all.iter().any(|s| s.kind == SpanKind::Backward));
}

#[test]
fn ring_overflow_drops_spans_without_changing_results() {
    let a = fbmpk_gen::poisson::grid2d_5pt(25, 25);
    let n = a.nrows();
    let x0 = start(n);
    let tiny = ObsOptions { record: true, span_capacity: 4 };
    let plain =
        FbmpkPlan::new(&a, opts(2, 32, SyncMode::ColorBarrier, ObsOptions::default())).unwrap();
    let rec = FbmpkPlan::new(&a, opts(2, 32, SyncMode::ColorBarrier, tiny)).unwrap();
    assert_eq!(plain.power(&x0, 5), rec.power(&x0, 5));
    let r = rec.recorder().unwrap();
    assert!(r.total_dropped() > 0, "a 4-span ring must overflow on k=5");
    // Retained spans stay well-formed (capacity bounds the lane length).
    for t in 0..2 {
        assert!(r.thread_spans(t).len() <= 4);
    }
    // reset() clears both spans and drop counters for reuse.
    r.reset();
    assert_eq!(r.total_dropped(), 0);
    assert!((0..2).all(|t| r.thread_spans(t).is_empty()));
}

/// Interleaved min-of-12 overhead measurement between two plans, three
/// attempts, robust on shared CI hosts. Panics when `other` stays more
/// than 2% slower than `plain` across every attempt.
#[cfg(not(debug_assertions))]
fn assert_overhead_under_two_percent(
    plain: &FbmpkPlan,
    other: &FbmpkPlan,
    x0: &[f64],
    k: usize,
    what: &str,
) {
    use std::time::Instant;
    let mut last_ratio = f64::INFINITY;
    for _attempt in 0..3 {
        let mut t_plain = f64::INFINITY;
        let mut t_other = f64::INFINITY;
        for _ in 0..12 {
            let t0 = Instant::now();
            std::hint::black_box(plain.power(x0, k));
            t_plain = t_plain.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            std::hint::black_box(other.power(x0, k));
            t_other = t_other.min(t0.elapsed().as_secs_f64());
        }
        last_ratio = t_other / t_plain;
        if last_ratio < 1.02 {
            return;
        }
    }
    panic!("{what} overhead {:.2}% exceeds 2%", (last_ratio - 1.0) * 100.0);
}

/// Release-only: a recording plan stays within 2% of a non-recording one
/// on a medium serial FBMPK run. The `NoopProbe` path is monomorphized to
/// the uninstrumented kernel, so bounding the *enabled* recorder bounds
/// the Noop overhead from above.
#[cfg(not(debug_assertions))]
#[test]
fn enabled_recorder_overhead_is_under_two_percent() {
    let a = fbmpk_gen::poisson::grid2d_5pt(200, 200);
    let n = a.nrows();
    let x0 = start(n);
    let base = FbmpkOptions {
        reorder: Some(AbmcParams { nblocks: 64, ..Default::default() }),
        ..Default::default()
    };
    let plain = FbmpkPlan::new(&a, base).unwrap();
    let rec = FbmpkPlan::new(&a, FbmpkOptions { obs: ObsOptions::recording(), ..base }).unwrap();
    assert_overhead_under_two_percent(&plain, &rec, &x0, 9, "recording");
}

/// Release-only: a plan with the live metrics endpoint attached (which
/// implies span recording plus per-sweep telemetry updates) stays within
/// 2% of a bare plan, and the numerics stay bit-identical — the
/// acceptance bound for leaving an endpoint on in production runs.
#[cfg(not(debug_assertions))]
#[test]
fn metrics_endpoint_overhead_is_under_two_percent_and_bit_identical() {
    let a = fbmpk_gen::poisson::grid2d_5pt(200, 200);
    let n = a.nrows();
    let x0 = start(n);
    let k = 9;
    let base = FbmpkOptions {
        reorder: Some(AbmcParams { nblocks: 64, ..Default::default() }),
        ..Default::default()
    };
    let plain = FbmpkPlan::new(&a, base).unwrap();
    let live = FbmpkPlan::new(
        &a,
        FbmpkOptions { metrics_addr: Some("127.0.0.1:0".parse().unwrap()), ..base },
    )
    .unwrap();
    assert_eq!(plain.power(&x0, k), live.power(&x0, k), "endpoint changed the numerics");
    assert_overhead_under_two_percent(&plain, &live, &x0, k, "metrics endpoint");
}
