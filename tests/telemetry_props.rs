//! Live-telemetry invariants: snapshots taken while writer threads
//! hammer the cells must be consistent (counters monotone, histograms
//! never torn), and the Prometheus text exposition must round-trip
//! through the strict in-tree parser with escaping intact.

use fbmpk_obs::expo;
use fbmpk_obs::live::{LiveRegistry, MetricKind, SampleValue};
use fbmpk_obs::{FamilySnapshot, LiveSample, LiveSource};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Writers hammer one counter lane and one histogram lane each while the
/// main thread snapshots continuously. Every snapshot must satisfy:
/// counter totals never decrease between snapshots, and a histogram is
/// never torn — its `count` always equals the sum of its bucket counts
/// and its `sum` is always consistent with the observed value range.
#[test]
fn concurrent_writers_never_tear_a_snapshot() {
    const WRITERS: usize = 4;
    const OPS: u64 = 100_000;
    let reg = Arc::new(LiveRegistry::new());
    let ops = reg.counter("stress_ops_total", "writer operations", WRITERS);
    let lat = reg.histogram("stress_lat_ns", "synthetic latencies", WRITERS);
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|lane| {
            let ops = ops.clone();
            let lat = lat.clone();
            std::thread::spawn(move || {
                for i in 0..OPS {
                    ops.add(lane, 1);
                    // Values in [1, 1000]: every observation lands in a
                    // low bucket, so min/max/sum bounds are tight.
                    lat.observe(lane, i % 1000 + 1);
                }
            })
        })
        .collect();

    let reader = {
        let reg = Arc::clone(&reg);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last_ops = 0u64;
            let mut last_count = 0u64;
            let mut snaps = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                let total = snap.counter_total("stress_ops_total");
                assert!(total >= last_ops, "counter went backwards: {total} < {last_ops}");
                assert!(total <= WRITERS as u64 * OPS, "counter overshot: {total}");
                last_ops = total;
                let fam = snap.family("stress_lat_ns").expect("histogram family present");
                assert_eq!(fam.kind, MetricKind::Histogram);
                for s in &fam.samples {
                    let SampleValue::Histogram(h) = &s.value else {
                        panic!("histogram family holds a non-histogram sample")
                    };
                    let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
                    assert_eq!(h.count(), bucket_total, "torn histogram: count != sum of buckets");
                    assert!(h.count() >= last_count, "histogram count went backwards");
                    last_count = h.count();
                    if h.count() > 0 {
                        assert!((1..=1000).contains(&h.min()), "min {} out of range", h.min());
                        assert!((1..=1000).contains(&h.max()), "max {} out of range", h.max());
                        assert!(h.min() <= h.max());
                        assert!(h.sum() >= h.count() * h.min(), "sum below count*min");
                        assert!(h.sum() <= h.count() * h.max(), "sum above count*max");
                    }
                }
                snaps += 1;
            }
            snaps
        })
    };

    for w in writers {
        w.join().expect("writer");
    }
    done.store(true, Ordering::Relaxed);
    let snaps = reader.join().expect("reader");
    assert!(snaps > 0, "reader never snapshotted");

    // Quiescent totals are exact.
    let snap = reg.snapshot();
    assert_eq!(snap.counter_total("stress_ops_total"), WRITERS as u64 * OPS);
    let fam = snap.family("stress_lat_ns").unwrap();
    // Histograms coalesce to one merged sample per family.
    assert_eq!(fam.samples.len(), 1);
    let SampleValue::Histogram(h) = &fam.samples[0].value else { panic!("not a histogram") };
    assert_eq!(h.count(), WRITERS as u64 * OPS);
    let per_writer: u64 = (0..OPS).map(|i| i % 1000 + 1).sum();
    assert_eq!(h.sum(), WRITERS as u64 * per_writer, "sum lost observations");
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), 1000);
}

/// A collector whose labels exercise every escape the text format
/// defines: backslash, double quote, and newline.
struct NastyLabels;

impl LiveSource for NastyLabels {
    fn collect(&self) -> Vec<FamilySnapshot> {
        vec![FamilySnapshot {
            name: "nasty_gauge".into(),
            help: "help with \\ and \n inside".into(),
            kind: MetricKind::Gauge,
            samples: vec![LiveSample {
                labels: vec![("path".into(), "C:\\dir\n\"quoted\"".into())],
                value: SampleValue::Gauge(1.5),
            }],
        }]
    }
}

#[test]
fn exposition_round_trips_through_the_strict_parser() {
    let reg = LiveRegistry::new();
    reg.counter("rt_requests_total", "requests", 2).add(0, 7);
    reg.counter("rt_requests_total", "requests", 2).add(1, 5);
    reg.gauge("rt_temp_celsius", "temperature", 1).set(0, -3.25);
    let h = reg.histogram("rt_sizes_bytes", "sizes", 1);
    for v in [1u64, 10, 100, 1000, 100_000] {
        h.observe(0, v);
    }
    let nasty: Arc<dyn LiveSource> = Arc::new(NastyLabels);
    reg.register_source(Arc::downgrade(&nasty));

    let text = expo::render(&reg.snapshot());
    // Raw-text escaping: label value backslash/quote/newline escaped.
    assert!(text.contains(r#"path="C:\\dir\n\"quoted\"""#), "escaping missing:\n{text}");
    // HELP newline escaped too.
    assert!(text.contains("help with \\\\ and \\n inside"), "{text}");

    let parsed = expo::parse(&text).unwrap_or_else(|e| panic!("render must parse: {e}\n{text}"));
    // Families carry their TYPE.
    assert_eq!(parsed.families["rt_requests_total"].1, "counter");
    assert_eq!(parsed.families["rt_temp_celsius"].1, "gauge");
    assert_eq!(parsed.families["rt_sizes_bytes"].1, "histogram");
    // Values survive, per-thread labels intact.
    assert_eq!(parsed.value("rt_requests_total", &[("thread", "0")]), Some(7.0));
    assert_eq!(parsed.value("rt_requests_total", &[("thread", "1")]), Some(5.0));
    assert_eq!(parsed.value("rt_temp_celsius", &[]), Some(-3.25));
    // The escaped label value parses back to the original bytes.
    assert_eq!(parsed.value("nasty_gauge", &[("path", "C:\\dir\n\"quoted\"")]), Some(1.5));
    // Histogram conformance: cumulative buckets are monotone, the +Inf
    // bucket equals _count, and _sum is the exact total.
    let buckets = parsed.samples_of("rt_sizes_bytes_bucket");
    assert!(!buckets.is_empty());
    let mut last = 0.0;
    for b in &buckets {
        assert!(b.value >= last, "non-cumulative bucket in:\n{text}");
        last = b.value;
    }
    let inf =
        parsed.value("rt_sizes_bytes_bucket", &[("le", "+Inf")]).expect("+Inf bucket is mandatory");
    assert_eq!(inf, 5.0);
    assert_eq!(parsed.value("rt_sizes_bytes_count", &[]), Some(5.0));
    assert_eq!(parsed.value("rt_sizes_bytes_sum", &[]), Some(101111.0));
}

#[test]
fn invalid_metric_names_are_rejected_at_registration() {
    for bad in ["0leading_digit", "has space", "has-dash", "", "né"] {
        let reg = LiveRegistry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.counter(bad, "help", 1);
        }));
        assert!(result.is_err(), "name '{bad}' must be rejected");
    }
    // The charset that IS legal: letters, digits, underscores, colons.
    let reg = LiveRegistry::new();
    reg.counter("legal_name:with_colon_0", "help", 1).inc(0);
    let text = expo::render(&reg.snapshot());
    assert!(expo::parse(&text).is_ok());
}
