//! Point-to-point synchronization equivalence tests: barrier-free colored
//! sweeps ([`SyncMode::PointToPoint`]) must be *bit-identical* to the
//! barrier-per-color schedule and to the serial pipeline on the same ABMC
//! ordering — the dependency waits only change when a row may start, never
//! which thread computes it or the within-row arithmetic order.
//!
//! Set `FBMPK_TEST_THREADS` to add an extra (oversubscribed) thread count
//! to every sweep — CI runs the suite with `FBMPK_TEST_THREADS=16` on top
//! of the default `{1, 2, 4, 8}`.

use fbmpk::{FbmpkOptions, FbmpkPlan, SyncMode};
use fbmpk_reorder::AbmcParams;
use proptest::prelude::*;

fn start(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 71 % 127) as f64) / 63.5 - 1.0).collect()
}

/// Thread counts under test: `{1, 2, 4, 8}` plus `FBMPK_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut t = vec![1usize, 2, 4, 8];
    if let Some(extra) =
        std::env::var("FBMPK_TEST_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if extra > 0 && !t.contains(&extra) {
            t.push(extra);
        }
    }
    t
}

/// A plan on the given ABMC ordering; `threads == 1` uses the serial pool
/// but still the colored schedule, so all three variants sweep the exact
/// same block structure.
fn plan(a: &fbmpk_sparse::Csr, threads: usize, nblocks: usize, sync: SyncMode) -> FbmpkPlan {
    let opts = FbmpkOptions {
        nthreads: threads,
        reorder: Some(AbmcParams { nblocks, ..Default::default() }),
        sync,
        ..Default::default()
    };
    FbmpkPlan::new(a, opts).unwrap()
}

#[test]
fn p2p_power_bitwise_matches_barrier_and_serial_across_suite() {
    for (name, scale) in
        [("cant", 0.002), ("G3_circuit", 0.001), ("Hook_1498", 0.001), ("nlpkkt120", 0.0003)]
    {
        let a = fbmpk_gen::suite::suite_entry(name).unwrap().generate(scale, 5);
        let n = a.nrows();
        let x0 = start(n);
        let serial = plan(&a, 1, 64, SyncMode::ColorBarrier);
        for t in thread_counts() {
            let barrier = plan(&a, t, 64, SyncMode::ColorBarrier);
            let p2p = plan(&a, t, 64, SyncMode::PointToPoint);
            // Both k parities: even k ends on a backward sweep, odd k adds
            // the tail stage after the last round.
            for k in [4usize, 5] {
                let want = serial.power(&x0, k);
                assert_eq!(barrier.power(&x0, k), want, "{name} t={t} k={k} barrier");
                assert_eq!(p2p.power(&x0, k), want, "{name} t={t} k={k} p2p");
            }
        }
    }
}

#[test]
fn p2p_krylov_and_sspmv_match_barrier_bitwise() {
    let a = fbmpk_gen::suite::suite_entry("ldoor").unwrap().generate(0.001, 5);
    let n = a.nrows();
    let x0 = start(n);
    let coeffs = [0.25, -1.0, 0.5, 0.0, 2.0, -0.125];
    for t in thread_counts() {
        let barrier = plan(&a, t, 48, SyncMode::ColorBarrier);
        let p2p = plan(&a, t, 48, SyncMode::PointToPoint);
        for k in [3usize, 4] {
            assert_eq!(barrier.krylov(&x0, k), p2p.krylov(&x0, k), "t={t} k={k}");
        }
        assert_eq!(barrier.sspmv(&coeffs, &x0), p2p.sspmv(&coeffs, &x0), "t={t}");
    }
}

#[test]
fn p2p_symgs_matches_barrier_bitwise() {
    // SYMGS updates in place, so this exercises the anti-dependency half
    // of the wait lists (a block must not overwrite rows an earlier-color
    // block still reads).
    let a = fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
        n: 600,
        nnz_per_row: 11.0,
        bandwidth: 80,
        seed: 7,
    });
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    let serial = plan(&a, 1, 32, SyncMode::ColorBarrier);
    for t in thread_counts() {
        let barrier = plan(&a, t, 32, SyncMode::ColorBarrier);
        let p2p = plan(&a, t, 32, SyncMode::PointToPoint);
        let mut xs = vec![0.0; n];
        let mut xb = vec![0.0; n];
        let mut xp = vec![0.0; n];
        for sweep in 0..3 {
            serial.symgs_sweep(&b, &mut xs);
            barrier.symgs_sweep(&b, &mut xb);
            p2p.symgs_sweep(&b, &mut xp);
            assert_eq!(xs, xb, "t={t} sweep={sweep} barrier");
            assert_eq!(xs, xp, "t={t} sweep={sweep} p2p");
        }
    }
}

#[test]
fn more_threads_than_blocks_per_color_stress() {
    // Far more threads than blocks: most threads own zero blocks in every
    // color and must park correctly in both modes (idle threads still hit
    // the color barriers; in point-to-point they have nothing to mark and
    // nothing to wait on).
    let a = fbmpk_gen::suite::suite_entry("cant").unwrap().generate(0.01, 5);
    let n = a.nrows();
    let x0 = start(n);
    let threads = std::env::var("FBMPK_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16)
        .max(16);
    let serial = plan(&a, 1, 8, SyncMode::ColorBarrier);
    let barrier = plan(&a, threads, 8, SyncMode::ColorBarrier);
    let p2p = plan(&a, threads, 8, SyncMode::PointToPoint);
    assert!(p2p.schedule().nblocks() < threads, "stress setup requires blocks < threads");
    for rep in 0..5 {
        for k in [4usize, 5] {
            let want = serial.power(&x0, k);
            assert_eq!(barrier.power(&x0, k), want, "rep={rep} k={k} barrier");
            assert_eq!(p2p.power(&x0, k), want, "rep={rep} k={k} p2p");
        }
    }
}

/// Random banded SPD-ish systems: small enough to run many cases, varied
/// enough to hit different color counts, block widths, and thread splits.
fn arb_banded() -> impl Strategy<Value = fbmpk_sparse::Csr> {
    (40usize..=220, 3usize..=24, 0u64..1000).prop_map(|(n, bandwidth, seed)| {
        fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n,
            nnz_per_row: 7.0,
            bandwidth,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn p2p_power_equals_barrier_on_random_systems(
        a in arb_banded(),
        threads in 1usize..=8,
        nblocks in 2usize..=40,
        k in 1usize..=6,
    ) {
        let n = a.nrows();
        let x0 = start(n);
        let barrier = plan(&a, threads, nblocks, SyncMode::ColorBarrier);
        let p2p = plan(&a, threads, nblocks, SyncMode::PointToPoint);
        prop_assert_eq!(barrier.power(&x0, k), p2p.power(&x0, k));
    }

    #[test]
    fn p2p_symgs_equals_barrier_on_random_systems(
        a in arb_banded(),
        threads in 1usize..=8,
        nblocks in 2usize..=40,
    ) {
        let n = a.nrows();
        let b = start(n);
        let barrier = plan(&a, threads, nblocks, SyncMode::ColorBarrier);
        let p2p = plan(&a, threads, nblocks, SyncMode::PointToPoint);
        let mut xb = vec![0.0; n];
        let mut xp = vec![0.0; n];
        for _ in 0..2 {
            barrier.symgs_sweep(&b, &mut xb);
            p2p.symgs_sweep(&b, &mut xp);
        }
        prop_assert_eq!(xb, xp);
    }
}
