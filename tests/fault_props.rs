//! Fault-tolerance properties: every injected fault terminates — with a
//! typed error or a bit-identical barrier fallback — and the hardened
//! runtime changes nothing when no fault fires.
//!
//! The deterministic injection tests and the (generator × threads × fault
//! site) proptest need the `fault-inject` feature:
//!
//! ```text
//! cargo test --test fault_props --features fault-inject
//! ```
//!
//! Without the feature only the zero-fault half runs: watchdog/fallback
//! configuration must be invisible on healthy runs (bit-identity plus, in
//! release, a <2% overhead bound mirroring `tests/obs_props.rs`).

use fbmpk::{FallbackPolicy, FbmpkOptions, FbmpkPlan, SyncMode};
use fbmpk_parallel::fault::FaultPlan;
use fbmpk_reorder::AbmcParams;

fn start(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 71 % 127) as f64) / 63.5 - 1.0).collect()
}

/// A point-to-point plan with the stall watchdog armed at `watchdog_ms`
/// and the given fallback policy, on the same 64-block ABMC ordering the
/// baseline uses.
fn hardened_plan(
    a: &fbmpk_sparse::Csr,
    threads: usize,
    watchdog_ms: u64,
    fallback: FallbackPolicy,
) -> FbmpkPlan {
    let opts = FbmpkOptions {
        nthreads: threads,
        reorder: Some(AbmcParams { nblocks: 64, ..Default::default() }),
        sync: SyncMode::PointToPoint,
        watchdog_ms: Some(watchdog_ms),
        fallback,
        ..Default::default()
    };
    FbmpkPlan::new(a, opts).unwrap()
}

/// The barrier baseline every fallback must reproduce bit-for-bit.
fn barrier_plan(a: &fbmpk_sparse::Csr, threads: usize) -> FbmpkPlan {
    let opts = FbmpkOptions {
        nthreads: threads,
        reorder: Some(AbmcParams { nblocks: 64, ..Default::default() }),
        sync: SyncMode::ColorBarrier,
        ..Default::default()
    };
    FbmpkPlan::new(a, opts).unwrap()
}

fn test_matrix(idx: usize) -> fbmpk_sparse::Csr {
    match idx % 3 {
        0 => fbmpk_gen::poisson::grid2d_5pt(20, 20),
        1 => fbmpk_gen::poisson::grid2d_5pt(17, 23),
        _ => fbmpk_gen::cage::cage_like(fbmpk_gen::cage::CageParams {
            n: 500,
            neighbors: 5,
            seed: 11,
        }),
    }
}

// ---------------------------------------------------------- zero-fault

/// Arming the watchdog and the fallback policy must be invisible on a
/// healthy run: bit-identical results and an untouched fallback counter.
#[test]
fn hardened_options_are_bit_identical_without_faults() {
    for idx in 0..3 {
        let a = test_matrix(idx);
        let x0 = start(a.nrows());
        for t in [2usize, 4, 8] {
            let want_barrier = barrier_plan(&a, t).power(&x0, 5);
            let hardened = hardened_plan(&a, t, 2_000, FallbackPolicy::ColorBarrier);
            assert_eq!(hardened.power(&x0, 5), want_barrier, "matrix {idx} @{t}t");
            assert_eq!(hardened.power(&x0, 4), barrier_plan(&a, t).power(&x0, 4));
            assert_eq!(hardened.fallbacks(), 0, "no stall may be recorded on a healthy run");
        }
    }
}

/// The `FBMPK_FAULT` grammar is part of the public surface whether or not
/// injection is compiled in: operators must get parse feedback, not
/// silently inert plans.
#[test]
fn fault_grammar_is_always_available() {
    let plan = FaultPlan::parse("panic:1:0;delay:3:2:25;skip:7:1").unwrap();
    assert_eq!(plan.faults.len(), 3);
    assert!(FaultPlan::parse("panic:1").is_err());
    assert!(FaultPlan::parse("warp:1:2").is_err());
}

/// Release-only, production configuration only (fault hooks compiled
/// out): the armed watchdog must stay within 2% of the default plan. Same
/// interleaved min-of-12 protocol as `tests/obs_props.rs`, three attempts
/// to ride out scheduler noise.
#[cfg(all(not(debug_assertions), not(feature = "fault-inject")))]
#[test]
fn hardened_plan_overhead_is_under_two_percent() {
    let a = fbmpk_gen::poisson::grid2d_5pt(60, 60);
    let x0 = start(a.nrows());
    let base = barrier_plan(&a, 4);
    let p2p_default = {
        let opts = FbmpkOptions {
            nthreads: 4,
            reorder: Some(AbmcParams { nblocks: 64, ..Default::default() }),
            sync: SyncMode::PointToPoint,
            ..Default::default()
        };
        FbmpkPlan::new(&a, opts).unwrap()
    };
    let hardened = hardened_plan(&a, 4, 10_000, FallbackPolicy::ColorBarrier);
    assert_eq!(hardened.power(&x0, 5), base.power(&x0, 5));

    let min_of = |plan: &FbmpkPlan| -> std::time::Duration {
        (0..12)
            .map(|_| {
                let t0 = std::time::Instant::now();
                std::hint::black_box(plan.power(&x0, 5));
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let mut last_ratio = f64::INFINITY;
    for _ in 0..3 {
        // Interleave so frequency drift hits both plans equally.
        let (mut d, mut h) = (std::time::Duration::MAX, std::time::Duration::MAX);
        for _ in 0..3 {
            d = d.min(min_of(&p2p_default));
            h = h.min(min_of(&hardened));
        }
        last_ratio = h.as_secs_f64() / d.as_secs_f64();
        if last_ratio <= 1.02 {
            return;
        }
    }
    panic!("hardened-plan overhead {:.2}% exceeds 2%", (last_ratio - 1.0) * 100.0);
}

// ---------------------------------------------------------- injected

#[cfg(feature = "fault-inject")]
mod injected {
    use super::*;
    use fbmpk::FbmpkError;
    use fbmpk_parallel::fault::{install, Fault};
    use proptest::prelude::*;

    /// A skip fault on every block's epoch-1 publish: any dependency edge
    /// in the forward sweep then waits on a flag that never arrives, so
    /// the stall is guaranteed on any connected matrix.
    fn skip_all_epoch1() -> FaultPlan {
        FaultPlan { faults: (0..64).map(|b| Fault::SkipMark { block: b, epoch: 1 }).collect() }
    }

    #[test]
    fn panicking_worker_is_a_typed_error_and_the_plan_stays_usable() {
        let a = test_matrix(0);
        let x0 = start(a.nrows());
        let want = barrier_plan(&a, 4).power(&x0, 5);
        let plan = hardened_plan(&a, 4, 2_000, FallbackPolicy::Error);
        {
            let _guard =
                install(FaultPlan { faults: vec![Fault::PanicAt { thread: 1, color: 0 }] });
            match plan.try_power(&x0, 5) {
                Err(FbmpkError::WorkerPanicked { thread: 1, payload, .. }) => {
                    assert!(payload.contains("fault-inject"), "{payload}");
                }
                other => panic!("expected WorkerPanicked from worker 1, got {other:?}"),
            }
        }
        // Pool and plan survive the fault: the same plan now succeeds and
        // still matches the baseline bit-for-bit.
        assert_eq!(plan.try_power(&x0, 5).unwrap(), want);
    }

    #[test]
    fn skipped_publish_stalls_with_diagnostic_dump_under_error_policy() {
        let a = test_matrix(0);
        let x0 = start(a.nrows());
        let plan = hardened_plan(&a, 4, 150, FallbackPolicy::Error);
        let _guard = install(skip_all_epoch1());
        match plan.try_power(&x0, 5) {
            Err(FbmpkError::Stalled { waited_ms, dump, .. }) => {
                assert!(waited_ms >= 150, "deadline honored, waited {waited_ms} ms");
                assert!(dump.contains("thread"), "dump must name the waiters:\n{dump}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn stall_falls_back_to_barrier_bit_identically() {
        let a = test_matrix(1);
        let x0 = start(a.nrows());
        let want = barrier_plan(&a, 4).power(&x0, 5);
        let plan = hardened_plan(&a, 4, 150, FallbackPolicy::ColorBarrier);
        let _guard = install(skip_all_epoch1());
        // The skip faults only affect point-to-point flag publishes; the
        // barrier schedule publishes none, so the retry must succeed.
        assert_eq!(plan.try_power(&x0, 5).unwrap(), want);
        assert!(plan.fallbacks() >= 1, "the degradation must be recorded");
    }

    #[test]
    fn delayed_publish_is_absorbed_bit_identically() {
        let a = test_matrix(2);
        let x0 = start(a.nrows());
        let want = barrier_plan(&a, 4).power(&x0, 5);
        let plan = hardened_plan(&a, 4, 2_000, FallbackPolicy::Error);
        let _guard =
            install(FaultPlan { faults: vec![Fault::DelayMark { block: 0, epoch: 1, ms: 30 }] });
        // A delay shorter than the deadline is ordinary slowness: the
        // waiters spin it out and the result is untouched.
        assert_eq!(plan.try_power(&x0, 5).unwrap(), want);
        assert_eq!(plan.fallbacks(), 0);
    }

    /// CI matrix entry point: when `FBMPK_FAULT` is set, install the plan
    /// it describes and assert the termination contract under the
    /// fallback policy — bit-identical success (fault missed, absorbed,
    /// or fallen back to the barrier schedule) or a typed panic fault.
    /// No-op when the variable is unset, so local runs are unaffected.
    #[test]
    fn env_driven_fault_terminates() {
        if std::env::var("FBMPK_FAULT").map_or(true, |s| s.trim().is_empty()) {
            return;
        }
        // Baseline before the fault goes live: the injected plan applies
        // to every kernel launch, the barrier reference included.
        let a = test_matrix(0);
        let x0 = start(a.nrows());
        let want = barrier_plan(&a, 4).power(&x0, 5);
        let plan = hardened_plan(&a, 4, 500, FallbackPolicy::ColorBarrier);
        let _guard =
            fbmpk_parallel::fault::install_from_env().expect("FBMPK_FAULT is set and non-empty");
        match plan.try_power(&x0, 5) {
            Ok(got) => assert_eq!(got, want, "recovered run must be bit-identical"),
            Err(FbmpkError::WorkerPanicked { .. }) => {}
            Err(other) => {
                panic!("env fault must end in success or a typed panic fault, got {other}")
            }
        }
    }

    fn arb_fault() -> impl Strategy<Value = Fault> {
        ((0usize..3, 0usize..64, 1u64..5), (0usize..8, 0usize..4, 1u64..25)).prop_map(
            |((kind, block, epoch), (thread, color, ms))| match kind {
                0 => Fault::PanicAt { thread, color },
                1 => Fault::SkipMark { block, epoch },
                _ => Fault::DelayMark { block, epoch, ms },
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The headline property: *any* (generator × threads × fault site
        /// × policy) combination terminates within the watchdog deadline —
        /// as a bit-identical success (fault missed, absorbed, or fallen
        /// back) or as the matching typed error. Never a hang, and the
        /// plan is always reusable afterwards.
        #[test]
        fn every_injected_fault_terminates(
            gen_idx in 0usize..3,
            tsel in 0usize..3,
            fault in arb_fault(),
            color_barrier in proptest::bool::ANY,
        ) {
            let threads = [2usize, 4, 8][tsel];
            let policy = if color_barrier {
                FallbackPolicy::ColorBarrier
            } else {
                FallbackPolicy::Error
            };
            let a = test_matrix(gen_idx);
            let x0 = start(a.nrows());
            let want = barrier_plan(&a, threads).power(&x0, 5);
            let plan = hardened_plan(&a, threads, 150, policy);
            {
                let _guard = install(FaultPlan { faults: vec![fault] });
                match plan.try_power(&x0, 5) {
                    Ok(got) => prop_assert_eq!(got, want.clone()),
                    Err(FbmpkError::WorkerPanicked { thread, .. }) => {
                        prop_assert!(
                            matches!(fault, Fault::PanicAt { thread: t, .. } if t == thread),
                            "panic error must come from the injected site, got thread \
                             {thread} for {fault:?}"
                        );
                    }
                    Err(FbmpkError::Stalled { .. }) => {
                        prop_assert!(
                            matches!(fault, Fault::SkipMark { .. })
                                && policy == FallbackPolicy::Error,
                            "only an unrecovered skip may stall, got {fault:?} under {policy:?}"
                        );
                    }
                    Err(other) => prop_assert!(false, "unexpected error: {other}"),
                }
            }
            // Fault uninstalled: the same plan must recover completely.
            prop_assert_eq!(plan.try_power(&x0, 5).unwrap(), want);
        }
    }
}
