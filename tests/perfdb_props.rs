//! Cross-crate integration tests for the performance-history subsystem:
//! the perf database, robust statistics, and report generation as seen
//! through the public `fbmpk_bench` API (the same surface the `repro`
//! binary and external tooling consume).

use fbmpk_bench::perfdb::{DbLoad, PerfDb, RecordCtx, RunRecord, RunSpec};
use fbmpk_bench::platform::{CacheInfo, Platform};
use fbmpk_bench::roofline::BandwidthProbe;
use fbmpk_bench::{perfreport, stats};
use std::io::Write;
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fbmpk-perfdb-props-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn platform() -> Platform {
    Platform {
        cpu_model: "itest-cpu".into(),
        logical_cpus: 8,
        physical_cores: 4,
        packages: 1,
        caches: vec![CacheInfo {
            level: 2,
            cache_type: "Unified".into(),
            size_bytes: 1 << 20,
            count: 4,
        }],
        arch: "x86_64",
        os: "linux",
        mem_gib: 16.0,
    }
}

fn ctx(rev: &str) -> RecordCtx {
    RecordCtx {
        git_rev: rev.into(),
        platform: platform(),
        bw: Some(BandwidthProbe {
            triad_gbs: 25.0,
            gather_gbs: 3.0,
            working_set_bytes: 1 << 22,
            reps: 2,
        }),
        scale: 0.01,
        reps: 5,
        unix_time_s: 1_750_000_000,
    }
}

fn spec(matrix: &str, kernel: &str) -> RunSpec {
    RunSpec {
        experiment: "sync".into(),
        matrix: matrix.into(),
        kernel: kernel.into(),
        sync: Some("p2p".into()),
        threads: 4,
        k: Some(5),
        options_fp: 0xdead_beef,
        wait_frac: Some(0.05),
        ipc: Some(1.7),
        modeled_matrix_bytes: Some(500_000_000),
        fallbacks: None,
        cut_edges: None,
        traffic_vs_model: None,
        simd: Some("avx2".into()),
        blocking: Some("streaming".into()),
        watchdog_fires: None,
        latency_p50_ms: None,
        latency_p99_ms: None,
        shed_count: None,
    }
}

fn record(rev: &str, matrix: &str, around_s: f64) -> RunRecord {
    let samples: Vec<f64> = (0..7).map(|i| around_s * (1.0 + 0.002 * (i as f64 - 3.0))).collect();
    RunRecord::new(&ctx(rev), spec(matrix, "fbmpk"), &samples).unwrap()
}

#[test]
fn append_then_load_round_trips_every_field_that_feeds_reports() {
    let dir = test_dir("roundtrip");
    let db = PerfDb::new(dir.join("runs.jsonl"));
    let original = vec![record("aaa", "poisson2d", 0.02), record("aaa", "tri-band", 0.04)];
    db.append_all(&original).unwrap();

    let DbLoad { records, skipped_lines } = db.load().unwrap();
    assert_eq!(skipped_lines, 0);
    assert_eq!(records.len(), 2);
    for (a, b) in original.iter().zip(&records) {
        assert_eq!(a.git_rev, b.git_rev);
        assert_eq!(a.config_key, b.config_key);
        assert_eq!(a.platform_fp, b.platform_fp);
        assert_eq!(a.samples_s, b.samples_s);
        assert_eq!(a.median_s, b.median_s);
        assert_eq!(a.ci_lo_s, b.ci_lo_s);
        assert_eq!(a.ci_hi_s, b.ci_hi_s);
        assert_eq!(a.spec.matrix, b.spec.matrix);
        assert_eq!(a.spec.options_fp, b.spec.options_fp);
        assert_eq!(a.spec.modeled_matrix_bytes, b.spec.modeled_matrix_bytes);
        assert_eq!(a.achieved_gbs, b.achieved_gbs);
        assert_eq!(a.roofline_frac, b.roofline_frac);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_trailing_line_is_skipped_and_later_appends_continue() {
    let dir = test_dir("torn");
    let db = PerfDb::new(dir.join("runs.jsonl"));
    db.append(&record("aaa", "m1", 0.02)).unwrap();
    // Simulate a crash mid-append: a torn, unterminated half-record.
    {
        let mut f = std::fs::OpenOptions::new().append(true).open(db.path()).unwrap();
        write!(f, "{{\"schema\":1,\"git_rev\":\"tor").unwrap();
    }
    // The loader recovers everything before the tear.
    let load = db.load().unwrap();
    assert_eq!(load.records.len(), 1);
    assert_eq!(load.skipped_lines, 1);

    // The next append starts cleanly on its own line and both healthy
    // records survive a reload.
    db.append(&record("bbb", "m1", 0.02)).unwrap();
    let load = db.load().unwrap();
    assert_eq!(load.records.len(), 2, "append after a torn line must still parse");
    assert_eq!(load.records[1].git_rev, "bbb");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bootstrap_ci_tightens_as_samples_accumulate() {
    // Deterministic "noisy" samples from a fixed recurrence.
    let noisy = |n: usize| -> Vec<f64> {
        let mut x = 0.7_f64;
        (0..n)
            .map(|_| {
                x = (x * 997.0 + 0.1234).fract();
                0.01 * (1.0 + 0.2 * x)
            })
            .collect()
    };
    let few = stats::bootstrap_median_ci(&noisy(8), stats::DEFAULT_RESAMPLES, 0.95).unwrap();
    let many = stats::bootstrap_median_ci(&noisy(256), stats::DEFAULT_RESAMPLES, 0.95).unwrap();
    assert!(
        many.width() < few.width(),
        "CI must shrink with more samples: {} vs {}",
        many.width(),
        few.width()
    );
}

#[test]
fn gate_flags_only_genuine_regressions_across_the_public_api() {
    let mut records = vec![
        record("base", "m1", 0.010),
        record("base", "m2", 0.020),
        // m1 regresses 40 %, m2 is unchanged.
        record("cur", "m1", 0.014),
        record("cur", "m2", 0.020),
    ];
    let gate =
        perfreport::gate(&records, "base", "cur", perfreport::GateConfig { rel_threshold: 0.10 });
    assert!(!gate.passed());
    assert_eq!(gate.regressions(), 1);
    let reg = gate.rows.iter().find(|r| r.regressed).unwrap();
    assert!(reg.label.contains("m1"));

    // Records from different hardware never gate against each other.
    let mut foreign = record("cur2", "m1", 0.050);
    foreign.platform_fp = "ffffffffffffffff".into();
    records.push(foreign);
    let gate =
        perfreport::gate(&records, "base", "cur2", perfreport::GateConfig { rel_threshold: 0.10 });
    assert!(gate.passed(), "cross-platform comparison must be skipped, not failed");
    std::fs::remove_dir_all(std::env::temp_dir().join("fbmpk-perfdb-props-gate")).ok();
}

#[test]
fn html_report_renders_from_loaded_records() {
    let dir = test_dir("html");
    let db = PerfDb::new(dir.join("runs.jsonl"));
    db.append_all(&[
        record("r1", "poisson2d", 0.030),
        record("r2", "poisson2d", 0.015),
        record("r2", "tri-band", 0.040),
    ])
    .unwrap();
    let records = db.load().unwrap().records;
    let html = perfreport::html_report(&records);
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("poisson2d"));
    // Self-contained: no scripts, no external fetches.
    assert!(!html.contains("<script"));
    assert!(!html.contains("src=") && !html.contains("href="));
    std::fs::remove_dir_all(&dir).ok();
}
