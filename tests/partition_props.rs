//! Partitioner properties and cross-strategy equivalence tests.
//!
//! Three blocking strategies feed the ABMC pipeline: `Contiguous` index
//! ranges, BFS `Aggregated` blocks, and the `Multilevel` edge-cut
//! partitioner. Changing the strategy changes the block structure, the
//! coloring, and the point-to-point wait lists — but for any *fixed*
//! strategy the swept numbers must stay bit-identical across thread
//! counts and sync modes, exactly like the base ABMC ordering.
//!
//! The cut-quality tests pin down the partitioner's reason to exist: on
//! irregular structures (R-MAT power-law graphs, circuit-like matrices)
//! the multilevel partition must cut fewer structural edges than BFS
//! aggregation at the same block count.
//!
//! Set `FBMPK_TEST_THREADS` to add an extra (oversubscribed) thread
//! count, as in `sync_props.rs` — CI uses `FBMPK_TEST_THREADS=16`.

use fbmpk::{FbmpkOptions, FbmpkPlan, SyncMode};
use fbmpk_reorder::blocking::{aggregated_blocks, block_size_for_count, contiguous_blocks};
use fbmpk_reorder::{
    balance_ratio, cut_edges, multilevel_blocks, AbmcParams, BlockingStrategy, Graph,
};
use proptest::prelude::*;

const STRATEGIES: [BlockingStrategy; 3] =
    [BlockingStrategy::Contiguous, BlockingStrategy::Aggregated, BlockingStrategy::Multilevel];

fn start(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 71 % 127) as f64) / 63.5 - 1.0).collect()
}

/// Thread counts under test: `{1, 2, 4, 8}` plus `FBMPK_TEST_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut t = vec![1usize, 2, 4, 8];
    if let Some(extra) =
        std::env::var("FBMPK_TEST_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if extra > 0 && !t.contains(&extra) {
            t.push(extra);
        }
    }
    t
}

fn plan(
    a: &fbmpk_sparse::Csr,
    threads: usize,
    nblocks: usize,
    strategy: BlockingStrategy,
    sync: SyncMode,
) -> FbmpkPlan {
    let opts = FbmpkOptions {
        nthreads: threads,
        reorder: Some(AbmcParams { nblocks, strategy, ..Default::default() }),
        sync,
        ..Default::default()
    };
    FbmpkPlan::new(a, opts).unwrap()
}

/// The two irregular generator classes the partitioner targets: a
/// symmetric R-MAT power-law graph and a circuit-like matrix with
/// long-range couplings.
fn irregular_cases() -> Vec<(&'static str, fbmpk_sparse::Csr)> {
    let rmat = fbmpk_gen::rmat::rmat(fbmpk_gen::rmat::RmatParams {
        scale: 10,
        edge_factor: 8,
        symmetric: true,
        seed: 11,
        ..Default::default()
    });
    let circuit = fbmpk_gen::circuit::circuit_like(fbmpk_gen::circuit::CircuitParams {
        n: 1500,
        nnz_per_row: 4.8,
        long_range_frac: 0.15,
        seed: 3,
    });
    vec![("rmat", rmat), ("circuit", circuit)]
}

#[test]
fn multilevel_partition_covers_balances_and_is_deterministic() {
    for (name, a) in irregular_cases() {
        let g = Graph::from_matrix(&a);
        for nblocks in [8usize, 32] {
            let b = multilevel_blocks(&g, nblocks);
            assert_eq!(b.block_of.len(), g.n(), "{name}: every row assigned");
            b.validate().unwrap_or_else(|e| panic!("{name}: invalid blocking: {e:?}"));
            // No hard absolute bound is possible on hub-heavy graphs (a
            // dense hub cluster formed during coarsening cannot always be
            // split back), but the partition must stay far from collapse
            // and never be *more* imbalanced than the BFS aggregation it
            // replaces at the same block count.
            let bal = balance_ratio(&g, &b);
            assert!(bal < 8.0, "{name} nblocks={nblocks}: balance {bal}");
            let agg = aggregated_blocks(&g, block_size_for_count(g.n(), nblocks));
            if nblocks == 8 {
                assert!(
                    bal < balance_ratio(&g, &agg),
                    "{name}: multilevel balance {bal} not better than aggregation {}",
                    balance_ratio(&g, &agg)
                );
            }
            let again = multilevel_blocks(&g, nblocks);
            assert_eq!(b.block_of, again.block_of, "{name}: nondeterministic");
        }
    }
}

#[test]
fn multilevel_cut_beats_aggregation_on_irregular_generators() {
    // The acceptance property: fewer cut structural edges than BFS
    // aggregation at the same block count on both irregular classes —
    // cut edges are what become cross-block wait-list dependencies.
    for (name, a) in irregular_cases() {
        let g = Graph::from_matrix(&a);
        for nblocks in [16usize, 64] {
            let ml = cut_edges(&g, &multilevel_blocks(&g, nblocks));
            let agg = cut_edges(&g, &aggregated_blocks(&g, block_size_for_count(g.n(), nblocks)));
            assert!(ml < agg, "{name} nblocks={nblocks}: multilevel {ml} >= aggregated {agg}");
        }
    }
}

#[test]
fn tuner_selects_minimum_cut_strategy() {
    for (name, a) in irregular_cases() {
        let nblocks = 32;
        let (chosen, cuts) = fbmpk::select_blocking_strategy(&a, nblocks);
        assert_eq!(cuts.len(), 3, "{name}: all three strategies compared");
        let min = cuts.iter().map(|&(_, c)| c).min().unwrap();
        let chosen_cut = cuts.iter().find(|&&(s, _)| s == chosen).unwrap().1;
        assert_eq!(chosen_cut, min, "{name}: tuner did not pick the minimum cut");
    }
}

#[test]
fn power_bit_identical_across_partitioner_threads_and_sync() {
    for (name, a) in irregular_cases() {
        let n = a.nrows();
        let x0 = start(n);
        for strategy in STRATEGIES {
            // Reference: serial pool, barrier schedule, same strategy.
            let serial = plan(&a, 1, 24, strategy, SyncMode::ColorBarrier);
            for t in thread_counts() {
                let barrier = plan(&a, t, 24, strategy, SyncMode::ColorBarrier);
                let p2p = plan(&a, t, 24, strategy, SyncMode::PointToPoint);
                for k in [4usize, 5] {
                    let want = serial.power(&x0, k);
                    assert_eq!(
                        barrier.power(&x0, k),
                        want,
                        "{name} {strategy:?} t={t} k={k} barrier"
                    );
                    assert_eq!(p2p.power(&x0, k), want, "{name} {strategy:?} t={t} k={k} p2p");
                }
            }
        }
    }
}

#[test]
fn symgs_bit_identical_across_partitioner_threads_and_sync() {
    // SYMGS updates in place — the anti-dependency half of the wait
    // lists — under every blocking strategy.
    let a = fbmpk_gen::circuit::circuit_like(fbmpk_gen::circuit::CircuitParams {
        n: 900,
        nnz_per_row: 5.0,
        long_range_frac: 0.2,
        seed: 17,
    });
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    for strategy in STRATEGIES {
        let serial = plan(&a, 1, 20, strategy, SyncMode::ColorBarrier);
        for t in thread_counts() {
            let barrier = plan(&a, t, 20, strategy, SyncMode::ColorBarrier);
            let p2p = plan(&a, t, 20, strategy, SyncMode::PointToPoint);
            let mut xs = vec![0.0; n];
            let mut xb = vec![0.0; n];
            let mut xp = vec![0.0; n];
            for sweep in 0..3 {
                serial.symgs_sweep(&b, &mut xs);
                barrier.symgs_sweep(&b, &mut xb);
                p2p.symgs_sweep(&b, &mut xp);
                assert_eq!(xs, xb, "{strategy:?} t={t} sweep={sweep} barrier");
                assert_eq!(xs, xp, "{strategy:?} t={t} sweep={sweep} p2p");
            }
        }
    }
}

#[test]
fn numa_first_touch_is_bit_identical_across_strategies() {
    // First-touch placement only changes which pages back the kernel
    // buffers, never the arithmetic: results must match bit for bit.
    let (_, a) = irregular_cases().remove(0);
    let n = a.nrows();
    let x0 = start(n);
    for strategy in STRATEGIES {
        for sync in [SyncMode::ColorBarrier, SyncMode::PointToPoint] {
            let opts = FbmpkOptions {
                nthreads: 4,
                reorder: Some(AbmcParams { nblocks: 24, strategy, ..Default::default() }),
                sync,
                ..Default::default()
            };
            let plain = FbmpkPlan::new(&a, opts).unwrap();
            let touched =
                FbmpkPlan::new(&a, FbmpkOptions { numa_first_touch: true, ..opts }).unwrap();
            for k in [4usize, 5] {
                assert_eq!(
                    plain.power(&x0, k),
                    touched.power(&x0, k),
                    "{strategy:?} {sync:?} k={k}"
                );
            }
        }
    }
}

#[test]
fn absent_sysfs_numa_degrades_to_historical_pinning() {
    // Single-node machines (and machines with no sysfs node tree at all)
    // must see exactly the pre-NUMA worker→core order.
    let t = fbmpk_parallel::NumaTopology::from_sysfs_root(std::path::Path::new(
        "/nonexistent-sysfs-node-tree",
    ));
    assert!(t.is_single_node());
    let cores = fbmpk_parallel::affinity::available_cores();
    assert_eq!(t.cpu_order(), (0..cores).collect::<Vec<_>>());
}

/// Random banded SPD-ish systems, as in `sync_props.rs`.
fn arb_banded() -> impl Strategy<Value = fbmpk_sparse::Csr> {
    (40usize..=220, 3usize..=24, 0u64..1000).prop_map(|(n, bandwidth, seed)| {
        fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n,
            nnz_per_row: 7.0,
            bandwidth,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multilevel_partition_is_valid_on_random_systems(
        a in arb_banded(),
        nblocks in 2usize..=40,
    ) {
        let g = Graph::from_matrix(&a);
        let b = multilevel_blocks(&g, nblocks);
        prop_assert_eq!(b.block_of.len(), g.n());
        prop_assert!(b.validate().is_ok());
        // Every structural edge is either internal or cut — the cut can
        // never exceed the edge total (sanity for the cost model the
        // tuner compares strategies with).
        let total_edges = cut_edges(&g, &contiguous_blocks(g.n(), g.n().max(1)));
        prop_assert!(cut_edges(&g, &b) <= total_edges);
    }

    #[test]
    fn power_equal_across_strategies_and_sync_on_random_systems(
        a in arb_banded(),
        threads in 1usize..=8,
        nblocks in 2usize..=40,
        k in 1usize..=6,
    ) {
        let n = a.nrows();
        let x0 = start(n);
        for strategy in STRATEGIES {
            let barrier = plan(&a, threads, nblocks, strategy, SyncMode::ColorBarrier);
            let p2p = plan(&a, threads, nblocks, strategy, SyncMode::PointToPoint);
            prop_assert_eq!(barrier.power(&x0, k), p2p.power(&x0, k));
        }
    }
}
