//! End-to-end validation of the `repro profile` artifacts: the emitted
//! chrome://tracing JSON must parse (with our own strict parser — the
//! same bytes chrome://tracing ingests), contain per-thread timelines,
//! and in barrier mode cover every ABMC color on every thread.
//!
//! The CI `profile-smoke` job additionally points `FBMPK_PROFILE_TRACE`
//! at the trace the `repro` binary itself wrote, so the binary's output
//! (not just the library path) is validated.

use fbmpk_bench::report::Json;
use fbmpk_bench::runner;
use fbmpk_bench::BenchConfig;

/// Structural checks on a parsed chrome-trace document. Returns the
/// number of complete ("X") events validated.
fn validate_trace(doc: &Json) -> usize {
    let events =
        doc.get("traceEvents").and_then(Json::as_array).expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "empty trace");
    // pid -> process name, from metadata events.
    let mut names: Vec<(u32, String)> = Vec::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("M") {
            let pid = e.get("pid").and_then(Json::as_f64).expect("metadata pid") as u32;
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .expect("process_name args.name");
            names.push((pid, name.to_string()));
        }
    }
    assert!(!names.is_empty(), "no process_name metadata");
    let mut nspans = 0;
    // (pid, tid) -> forward-span colors seen.
    let mut colors: std::collections::BTreeMap<(u32, u32), std::collections::BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        nspans += 1;
        let pid = e.get("pid").and_then(Json::as_f64).expect("span pid") as u32;
        let tid = e.get("tid").and_then(Json::as_f64).expect("span tid") as u32;
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "span missing ts");
        assert!(e.get("dur").and_then(Json::as_f64).expect("span dur") >= 0.0);
        let name = e.get("name").and_then(Json::as_str).expect("span name");
        let cat = e.get("cat").and_then(Json::as_str).expect("span cat");
        assert!(matches!(cat, "compute" | "wait" | "phase"), "unexpected category {cat}");
        if name == "forward" {
            if let Some(c) = e.get("args").and_then(|a| a.get("color")).and_then(Json::as_f64) {
                colors.entry((pid, tid)).or_default().insert(c as u64);
            }
        }
    }
    assert!(nspans > 0, "no complete events");
    // Barrier-mode processes enumerate every color on every thread (the
    // sweep records a span per (thread, color) even for empty row
    // ranges); each thread of a barrier pid must cover the pid's full
    // color set.
    for (pid, name) in &names {
        if !name.ends_with("/ barrier") {
            continue;
        }
        let per_thread: Vec<_> =
            colors.iter().filter(|((p, _), _)| p == pid).map(|((_, t), set)| (*t, set)).collect();
        assert!(!per_thread.is_empty(), "barrier process {name} has no forward spans");
        let all: std::collections::BTreeSet<u64> =
            per_thread.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        let ncolors = all.len() as u64;
        assert_eq!(all, (0..ncolors).collect(), "{name}: colors not contiguous from 0");
        for (t, set) in per_thread {
            assert_eq!(*set, all, "{name}: thread {t} missing colors");
        }
    }
    nspans
}

#[test]
fn profile_trace_parses_and_covers_every_thread_and_color() {
    let cfg = BenchConfig { scale: 0.002, threads: 2, reps: 1, seed: 42 };
    let cases: Vec<_> = runner::load_suite(&cfg).into_iter().take(2).collect();
    let (rows, trace, _registry) = runner::profile(&cfg, &cases, None);
    assert_eq!(rows.len(), 2);
    assert!(rows.iter().all(|r| r.identical), "recording changed the numerics");
    // perf_event_open may be unavailable (sandboxes, non-Linux): hw is
    // then None and everything else still works — the degradation path.
    let path =
        std::env::temp_dir().join(format!("fbmpk_profile_trace_{}.json", std::process::id()));
    trace.write(&path).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let _ = std::fs::remove_file(&path);
    let doc = Json::parse(&text).expect("trace must be valid JSON");
    let nspans = validate_trace(&doc);
    // Two processes per matrix were registered and both recorded spans;
    // the plan-phase process (pid 5) appears only when phase spans fired
    // during this process's plan constructions.
    let expected_pids: std::collections::BTreeSet<u64> = (1..=4).collect();
    let seen: std::collections::BTreeSet<u64> = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| e.get("pid").and_then(Json::as_f64).unwrap() as u64)
        .collect();
    assert!(seen.is_superset(&expected_pids), "missing kernel pids: {seen:?}");
    assert!(seen.iter().all(|p| (1..=5).contains(p)), "unexpected pids: {seen:?}");
    assert!(nspans > 8, "implausibly few spans: {nspans}");
}

/// When CI (or a user) sets `FBMPK_PROFILE_TRACE` to a trace emitted by
/// the `repro` binary, validate that artifact too. Skips silently when
/// the variable is unset so the test is a no-op in plain `cargo test`.
#[test]
fn emitted_trace_file_is_valid_when_provided() {
    let Ok(path) = std::env::var("FBMPK_PROFILE_TRACE") else {
        return;
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = Json::parse(&text).expect("emitted trace must be valid JSON");
    let nspans = validate_trace(&doc);
    eprintln!("validated {nspans} spans from {path}");
}
