//! Cross-crate correctness: FBMPK must reproduce the standard MPK bit-for-
//! sanity (to 1e-11 relative) on every matrix class of the paper's suite,
//! for every configuration axis: serial/parallel, both vector layouts,
//! odd/even powers, with/without ABMC.

use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk, VectorLayout};
use fbmpk_reorder::{AbmcParams, BlockingStrategy};
use fbmpk_sparse::vecops::rel_err_inf;

fn start(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 % 101) as f64) / 50.0 - 1.0).collect()
}

#[test]
fn fbmpk_matches_standard_on_full_suite() {
    for entry in fbmpk_gen::paper_suite() {
        let a = entry.generate(0.0005, 9);
        let n = a.nrows();
        let x0 = start(n);
        let baseline = StandardMpk::new(&a, 1).unwrap();
        let mut opts = FbmpkOptions::parallel(3);
        opts.reorder = Some(AbmcParams { nblocks: (n / 8).max(1), ..Default::default() });
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        for k in [1usize, 4, 5] {
            let want = baseline.power(&x0, k);
            let got = plan.power(&x0, k);
            let err = rel_err_inf(&got, &want);
            assert!(err < 1e-11, "{} k={k}: err {err:e}", entry.name);
        }
    }
}

#[test]
fn all_configuration_axes_agree() {
    let a = fbmpk_gen::suite::suite_entry("pwtk").unwrap().generate(0.002, 4);
    let n = a.nrows();
    let x0 = start(n);
    let baseline = StandardMpk::new(&a, 1).unwrap();
    let abmc = AbmcParams { nblocks: 32, ..Default::default() };
    let abmc_contig = AbmcParams { nblocks: 32, strategy: BlockingStrategy::Contiguous, ..abmc };
    let configs: Vec<(String, FbmpkOptions)> = vec![
        ("serial/btb/noreorder".into(), FbmpkOptions::default()),
        (
            "serial/split/noreorder".into(),
            FbmpkOptions { layout: VectorLayout::Split, ..Default::default() },
        ),
        ("serial/btb/abmc".into(), FbmpkOptions { reorder: Some(abmc), ..Default::default() }),
        ("par2/btb/abmc".into(), {
            let mut o = FbmpkOptions::parallel(2);
            o.reorder = Some(abmc);
            o
        }),
        ("par4/split/abmc-contig".into(), {
            let mut o = FbmpkOptions::parallel(4);
            o.reorder = Some(abmc_contig);
            o.layout = VectorLayout::Split;
            o
        }),
        ("par8/btb/abmc".into(), {
            let mut o = FbmpkOptions::parallel(8);
            o.reorder = Some(abmc);
            o
        }),
    ];
    for (name, opts) in configs {
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        for k in 1..=8 {
            let want = baseline.power(&x0, k);
            let got = plan.power(&x0, k);
            let err = rel_err_inf(&got, &want);
            assert!(err < 1e-11, "{name} k={k}: err {err:e}");
        }
    }
}

#[test]
fn standard_parallel_matches_standard_serial_exactly() {
    // Row-partitioned standard MPK performs identical arithmetic per row,
    // so results must be bitwise equal across thread counts.
    let a = fbmpk_gen::suite::suite_entry("shipsec1").unwrap().generate(0.002, 4);
    let x0 = start(a.nrows());
    let serial = StandardMpk::new(&a, 1).unwrap();
    for t in [2usize, 3, 8] {
        let par = StandardMpk::new(&a, t).unwrap();
        for k in [1usize, 3, 6] {
            assert_eq!(serial.power(&x0, k), par.power(&x0, k), "t={t} k={k}");
        }
    }
}

#[test]
fn krylov_and_sspmv_consistent_with_power() {
    let a = fbmpk_gen::suite::suite_entry("G3_circuit").unwrap().generate(0.001, 2);
    let n = a.nrows();
    let x0 = start(n);
    let mut opts = FbmpkOptions::parallel(2);
    opts.reorder = Some(AbmcParams { nblocks: 16, ..Default::default() });
    let plan = FbmpkPlan::new(&a, opts).unwrap();
    let k = 6;
    let basis = plan.krylov(&x0, k);
    for (i, b) in basis.iter().enumerate() {
        let p = plan.power(&x0, i + 1);
        assert!(rel_err_inf(b, &p) < 1e-11, "iterate {}", i + 1);
    }
    // sspmv with a unit coefficient on one power equals that power.
    for i in 1..=k {
        let mut coeffs = vec![0.0; k + 1];
        coeffs[i] = 1.0;
        let y = plan.sspmv(&coeffs, &x0);
        assert!(rel_err_inf(&y, &basis[i - 1]) < 1e-11, "coeff on power {i}");
    }
}

#[test]
fn unsymmetric_suite_members_work() {
    for name in ["cage14", "ML_Geer"] {
        let a = fbmpk_gen::suite::suite_entry(name).unwrap().generate(0.0008, 6);
        assert!(!a.is_symmetric(1e-12), "{name} should be unsymmetric");
        let x0 = start(a.nrows());
        let baseline = StandardMpk::new(&a, 1).unwrap();
        let mut opts = FbmpkOptions::parallel(2);
        opts.reorder = Some(AbmcParams::default());
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        for k in [2usize, 7] {
            let err = rel_err_inf(&plan.power(&x0, k), &baseline.power(&x0, k));
            assert!(err < 1e-11, "{name} k={k}: {err:e}");
        }
    }
}

#[test]
fn pre_rcm_composition_is_correct_and_reduces_bandwidth() {
    use fbmpk_sparse::stats::MatrixStats;
    // A scrambled matrix: RCM + ABMC must still compute correct powers.
    let base = fbmpk_gen::suite::suite_entry("G3_circuit").unwrap().generate(0.001, 8);
    let n = base.nrows();
    let x0 = start(n);
    let baseline = StandardMpk::new(&base, 1).unwrap();
    let mut opts = FbmpkOptions::parallel(3);
    opts.reorder = Some(AbmcParams { nblocks: 32, ..Default::default() });
    opts.pre_rcm = true;
    let plan = FbmpkPlan::new(&base, opts).unwrap();
    for k in [1usize, 4, 5] {
        let err = rel_err_inf(&plan.power(&x0, k), &baseline.power(&x0, k));
        assert!(err < 1e-11, "k={k}: {err:e}");
    }
    // RCM pre-pass on the *working* matrix keeps bandwidth bounded: the
    // split the plan runs on should not be wildly less local than the
    // RCM-only matrix.
    let rcm_only = fbmpk_reorder::rcm(&base).permute_symmetric(&base).unwrap();
    let s_rcm = MatrixStats::compute(&rcm_only);
    let merged = plan.split().merge();
    let s_plan = MatrixStats::compute(&merged);
    assert!(s_plan.nnz == s_rcm.nnz);
}
