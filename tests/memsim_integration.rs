//! Memory-simulator integration: the Fig. 9 experiment pipeline on suite
//! matrices, validating the traffic trends the paper reports against both
//! the analytic model and the replayed kernels.

use fbmpk::model::{ideal_ratio, MatrixShape, TrafficModel};
use fbmpk_bench::runner::scaled_llc;
use fbmpk_memsim::{trace_fbmpk, trace_standard_mpk, TracedLayout};

fn traffic_ratio(a: &fbmpk_sparse::Csr, k: usize) -> f64 {
    let llc = [scaled_llc(a.nnz() * 12 + 8 * (a.nrows() + 1))];
    let s = trace_standard_mpk(a, k, &llc);
    let f = trace_fbmpk(a, k, TracedLayout::BackToBack, &llc);
    f.total() as f64 / s.total() as f64
}

#[test]
fn dense_suite_matrices_beat_80_percent_at_k9() {
    // Paper Fig. 9: at k = 9 the dense matrices reach 56-65%.
    for name in ["audikw_1", "ML_Geer", "inline_1"] {
        let a = fbmpk_gen::suite::suite_entry(name).unwrap().generate(0.002, 3);
        let r = traffic_ratio(&a, 9);
        assert!(r < 0.80, "{name}: ratio {r:.3}");
        assert!(r > ideal_ratio(9) - 0.05, "{name}: ratio {r:.3} below the ideal floor");
    }
}

#[test]
fn g3_circuit_is_the_worst_case() {
    // Paper §V-C: the sparsest matrix benefits least (77% at k = 9).
    let suite: Vec<_> = ["audikw_1", "G3_circuit", "afshell10", "ML_Geer"]
        .iter()
        .map(|n| (n.to_string(), fbmpk_gen::suite::suite_entry(n).unwrap().generate(0.002, 3)))
        .collect();
    let ratios: Vec<(String, f64)> =
        suite.iter().map(|(n, a)| (n.clone(), traffic_ratio(a, 9))).collect();
    let g3 = ratios.iter().find(|(n, _)| n == "G3_circuit").unwrap().1;
    for (n, r) in &ratios {
        if n != "G3_circuit" {
            assert!(g3 > *r, "G3_circuit ({g3:.3}) must exceed {n} ({r:.3})");
        }
    }
}

#[test]
fn measured_ratio_decreases_with_k_like_fig9() {
    let a = fbmpk_gen::suite::suite_entry("Hook_1498").unwrap().generate(0.002, 3);
    let r3 = traffic_ratio(&a, 3);
    let r6 = traffic_ratio(&a, 6);
    let r9 = traffic_ratio(&a, 9);
    assert!(r3 > r6 && r6 > r9, "k=3 {r3:.3}, k=6 {r6:.3}, k=9 {r9:.3}");
    // And each sits above its ideal (overheads only add traffic).
    assert!(r3 > ideal_ratio(3) - 0.03);
    assert!(r9 > ideal_ratio(9) - 0.03);
}

#[test]
fn analytic_model_tracks_simulator_in_streaming_regime() {
    // The closed-form model (no cache effects) and the simulator (with a
    // small LLC) must agree within 15 points on a dense streaming matrix.
    let a = fbmpk_gen::suite::suite_entry("audikw_1").unwrap().generate(0.002, 3);
    let shape = MatrixShape::of(&a);
    for k in [3usize, 6, 9] {
        let model = TrafficModel::evaluate(&shape, k).total_ratio();
        let sim = traffic_ratio(&a, k);
        assert!((model - sim).abs() < 0.15, "k={k}: model {model:.3} vs simulator {sim:.3}");
    }
}

#[test]
fn logical_traffic_is_cache_invariant() {
    let a = fbmpk_gen::suite::suite_entry("pwtk").unwrap().generate(0.002, 3);
    let small = [fbmpk_memsim::CacheConfig { size_bytes: 64 << 10, line_bytes: 64, assoc: 8 }];
    let big = [fbmpk_memsim::CacheConfig { size_bytes: 64 << 20, line_bytes: 64, assoc: 16 }];
    let t1 = trace_standard_mpk(&a, 4, &small);
    let t2 = trace_standard_mpk(&a, 4, &big);
    assert_eq!(t1.logical_bytes, t2.logical_bytes);
    assert!(t1.dram_read_bytes > t2.dram_read_bytes);
}
