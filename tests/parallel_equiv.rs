//! Parallel-equivalence stress tests: the colored parallel FBMPK must
//! produce bitwise-identical results to the serial FBMPK on the *same
//! reordered matrix* (same arithmetic order per row), and agree with the
//! baseline across many thread counts, repeated to shake out scheduling
//! nondeterminism.

use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk, VectorLayout};
use fbmpk_reorder::AbmcParams;
use fbmpk_sparse::vecops::rel_err_inf;

fn start(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 71 % 127) as f64) / 63.5 - 1.0).collect()
}

#[test]
fn parallel_is_bitwise_deterministic_across_runs() {
    // Row-wise arithmetic order is fixed by the schedule, so repeated runs
    // must agree bit-for-bit even with racing threads.
    let a = fbmpk_gen::suite::suite_entry("Hook_1498").unwrap().generate(0.001, 5);
    let n = a.nrows();
    let x0 = start(n);
    let mut opts = FbmpkOptions::parallel(4);
    opts.reorder = Some(AbmcParams { nblocks: 64, ..Default::default() });
    let plan = FbmpkPlan::new(&a, opts).unwrap();
    let first = plan.power(&x0, 5);
    for _ in 0..10 {
        assert_eq!(plan.power(&x0, 5), first);
    }
}

#[test]
fn parallel_equals_serial_on_same_ordering_bitwise() {
    // Serial and parallel plans over the same ABMC ordering perform the
    // same per-row dot products in the same within-row order, so the
    // results are bitwise equal (the schedule only changes *which thread*
    // computes a row, never the row's arithmetic).
    let a = fbmpk_gen::suite::suite_entry("ldoor").unwrap().generate(0.001, 5);
    let n = a.nrows();
    let x0 = start(n);
    let abmc = AbmcParams { nblocks: 48, ..Default::default() };
    let serial =
        FbmpkPlan::new(&a, FbmpkOptions { reorder: Some(abmc), ..Default::default() }).unwrap();
    for t in [2usize, 3, 5, 8] {
        let mut opts = FbmpkOptions::parallel(t);
        opts.reorder = Some(abmc);
        let par = FbmpkPlan::new(&a, opts).unwrap();
        for k in [1usize, 2, 5, 6] {
            assert_eq!(serial.power(&x0, k), par.power(&x0, k), "t={t} k={k}");
        }
    }
}

#[test]
fn oversubscribed_threads_still_correct() {
    // More threads than blocks/colors/cores: empty ranges and heavy barrier
    // traffic must not corrupt results.
    let a = fbmpk_gen::suite::suite_entry("cant").unwrap().generate(0.01, 5);
    let n = a.nrows();
    let x0 = start(n);
    let baseline = StandardMpk::new(&a, 1).unwrap();
    let mut opts = FbmpkOptions::parallel(16);
    opts.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
    let plan = FbmpkPlan::new(&a, opts).unwrap();
    let err = rel_err_inf(&plan.power(&x0, 5), &baseline.power(&x0, 5));
    assert!(err < 1e-11, "err {err:e}");
}

#[test]
fn both_layouts_agree_in_parallel() {
    let a = fbmpk_gen::suite::suite_entry("Flan_1565").unwrap().generate(0.0005, 5);
    let n = a.nrows();
    let x0 = start(n);
    let abmc = AbmcParams { nblocks: 32, ..Default::default() };
    let mk = |layout| {
        let mut o = FbmpkOptions::parallel(3);
        o.reorder = Some(abmc);
        o.layout = layout;
        FbmpkPlan::new(&a, o).unwrap()
    };
    let btb = mk(VectorLayout::BackToBack);
    let split = mk(VectorLayout::Split);
    for k in [3usize, 4] {
        // Identical arithmetic, different storage: bitwise equal.
        assert_eq!(btb.power(&x0, k), split.power(&x0, k), "k={k}");
    }
}

#[test]
fn sspmv_parallel_matches_serial_accumulation() {
    let a = fbmpk_gen::suite::suite_entry("nlpkkt120").unwrap().generate(0.0003, 5);
    let n = a.nrows();
    let x0 = start(n);
    let coeffs = [0.25, -1.0, 0.5, 0.0, 2.0, -0.125];
    let abmc = AbmcParams { nblocks: 40, ..Default::default() };
    let serial =
        FbmpkPlan::new(&a, FbmpkOptions { reorder: Some(abmc), ..Default::default() }).unwrap();
    let mut opts = FbmpkOptions::parallel(4);
    opts.reorder = Some(abmc);
    let par = FbmpkPlan::new(&a, opts).unwrap();
    assert_eq!(serial.sspmv(&coeffs, &x0), par.sspmv(&coeffs, &x0));
}
