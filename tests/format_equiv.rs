//! Storage-format equivalence: CSR, ELLPACK and SELL-C-sigma must compute
//! identical SpMV results on every suite matrix class, and SpMM must match
//! per-vector SpMV — the invariants that make format choice a pure
//! performance decision (paper SVII).

use fbmpk_sparse::ell::Ell;
use fbmpk_sparse::sellcs::SellCs;
use fbmpk_sparse::spmm::{block_power, spmm, MultiVec};
use fbmpk_sparse::spmv::{spmv, spmv_alloc};
use fbmpk_sparse::vecops::rel_err_inf;

#[test]
fn all_formats_agree_on_full_suite() {
    for entry in fbmpk_gen::paper_suite() {
        let a = entry.generate(0.0005, 21);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 29 % 53) as f64) / 26.0 - 1.0).collect();
        let mut want = vec![0.0; n];
        spmv(&a, &x, &mut want);
        let ell = Ell::from_csr(&a);
        let mut got = vec![0.0; n];
        ell.spmv(&x, &mut got);
        assert!(rel_err_inf(&got, &want) < 1e-13, "{} ELL", entry.name);
        for (c, sigma) in [(4usize, 0usize), (8, 64), (16, 128)] {
            let s = SellCs::from_csr(&a, c, sigma);
            s.spmv(&x, &mut got);
            assert!(rel_err_inf(&got, &want) < 1e-13, "{} SELL-{c}-{sigma}", entry.name);
        }
    }
}

#[test]
fn sellcs_padding_never_worse_than_ell() {
    for entry in fbmpk_gen::paper_suite() {
        let a = entry.generate(0.0005, 21);
        let ell = Ell::from_csr(&a);
        let sell = SellCs::from_csr(&a, 8, 64);
        assert!(
            sell.padding_ratio() <= ell.padding_ratio() + 1e-9,
            "{}: SELL {} vs ELL {}",
            entry.name,
            sell.padding_ratio(),
            ell.padding_ratio()
        );
    }
}

#[test]
fn spmm_block_power_matches_fbmpk_krylov() {
    use fbmpk::{FbmpkOptions, FbmpkPlan};
    let a = fbmpk_gen::suite::suite_entry("pwtk").unwrap().generate(0.001, 3);
    let n = a.nrows();
    let cols: Vec<Vec<f64>> =
        (0..3).map(|v| (0..n).map(|i| ((i * (v + 2) % 17) as f64) / 8.0 - 1.0).collect()).collect();
    let x = MultiVec::from_columns(&cols);
    let k = 4;
    let y = block_power(&a, &x, k);
    let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
    for (v, col) in cols.iter().enumerate() {
        let want = plan.power(col, k);
        assert!(rel_err_inf(&y.column(v), &want) < 1e-11, "vector {v}");
    }
}

#[test]
fn spmm_on_unsymmetric_matrix() {
    let a =
        fbmpk_gen::cage::cage_like(fbmpk_gen::cage::CageParams { n: 300, neighbors: 18, seed: 2 });
    let n = a.nrows();
    let cols = vec![vec![1.0; n], (0..n).map(|i| i as f64 / n as f64).collect()];
    let x = MultiVec::from_columns(&cols);
    let mut y = MultiVec::zeros(n, 2);
    spmm(&a, &x, &mut y);
    for (v, col) in cols.iter().enumerate() {
        assert!(rel_err_inf(&y.column(v), &spmv_alloc(&a, col)) < 1e-13, "vector {v}");
    }
}
