//! Property-based tests of the tuning layer: merge-path partitioning must
//! cover the merge sequence exactly once with per-cut overshoot bounded by
//! one item, every specialized kernel must agree with the scalar CSR
//! reference, and a tuned plan must be numerically indistinguishable from
//! the untuned baseline for every entry point.

use fbmpk::{StandardMpk, TuneOptions, TunedPlan};
use fbmpk_parallel::partition::{merge_balance_by_weight, merge_path_partition};
use fbmpk_sparse::sellcs::SellCs;
use fbmpk_sparse::spmv::{spmv, spmv_rows_rowsplit, spmv_unrolled4};
use fbmpk_sparse::vecops::rel_err_inf;
use fbmpk_sparse::{Coo, Csr};
use proptest::prelude::*;

/// Random sparse square matrix (entries in [-1, 1], dimension 1..=32,
/// density up to ~25%, duplicates merge through COO assembly).
fn arb_matrix() -> impl Strategy<Value = Csr> {
    (1usize..=32).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..(n * n / 4).max(1)).prop_map(
            move |trips| {
                let mut coo = Coo::new(n, n);
                for (r, c, v) in trips {
                    coo.push(r, c, v).unwrap();
                }
                coo.to_csr()
            },
        )
    })
}

/// Random nonneg weight array, including empty rows and heavy skew.
fn arb_weights() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..40, 1..=80)
}

/// Checks the merge-path invariants for `ranges` over `prefix`:
/// contiguous exact coverage of all rows (hence all nnz exactly once), and
/// each interior cut is the *largest* row whose merge coordinate
/// (`prefix[r] - prefix[0] + r`) does not exceed its ideal diagonal — i.e.
/// the cut undershoots the perfect split point by less than one merge item
/// (one row or one nonzero). That bound implies each part's share of
/// `rows + nnz` work is within one item of the ideal `merge_len / parts`.
fn check_merge_invariants(prefix: &[usize], parts: usize, ranges: &[std::ops::Range<usize>]) {
    let n = prefix.len() - 1;
    let total = prefix[n] - prefix[0];
    let merge_len = n + total;
    assert_eq!(ranges.len(), parts);
    // Exact contiguous coverage: every row (and so every nnz) exactly once.
    let mut next = 0usize;
    for r in ranges {
        assert_eq!(r.start, next);
        assert!(r.end >= r.start);
        next = r.end;
    }
    assert_eq!(next, n);
    // Per-cut optimality: cut k is the largest row r with
    // coord(r) <= d_k, so the split is within one merge item of ideal.
    let coord = |r: usize| prefix[r] - prefix[0] + r;
    for (k, r) in ranges.iter().enumerate().take(parts - 1) {
        let cut = r.end;
        let d = ((k + 1) * merge_len) / parts;
        assert!(coord(cut) <= d, "cut {cut} overshoots diagonal {d}");
        assert!(cut == n || coord(cut + 1) > d, "cut {cut} not maximal for diagonal {d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_path_covers_once_and_balances(a in arb_matrix(), parts in 1usize..=9) {
        let ranges = merge_path_partition(a.row_ptr(), parts);
        check_merge_invariants(a.row_ptr(), parts, &ranges);
    }

    #[test]
    fn merge_balance_by_weight_covers_once_and_balances(
        w in arb_weights(),
        parts in 1usize..=9,
    ) {
        let ranges = merge_balance_by_weight(&w, parts);
        // Reconstruct the prefix the partitioner derives internally.
        let mut prefix = vec![0usize];
        for &x in &w {
            prefix.push(prefix.last().unwrap() + x);
        }
        check_merge_invariants(&prefix, parts, &ranges);
    }

    #[test]
    fn unrolled_spmv_equals_scalar(a in arb_matrix(), seed in 0u64..1000) {
        let n = a.nrows();
        let x: Vec<f64> =
            (0..n).map(|i| (((i as u64 + seed) * 2654435761 % 2000) as f64) / 1000.0 - 1.0).collect();
        let mut want = vec![0.0; n];
        spmv(&a, &x, &mut want);
        let mut got = vec![0.0; n];
        spmv_unrolled4(&a, &x, &mut got);
        prop_assert!(rel_err_inf(&got, &want) < 1e-12);
        let mut got2 = vec![0.0; n];
        spmv_rows_rowsplit(&a, &x, &mut got2, 0, n, 4);
        prop_assert!(rel_err_inf(&got2, &want) < 1e-12);
    }

    #[test]
    fn sellcs_spmv_equals_scalar(a in arb_matrix(), c in 1usize..=8, sigma_mul in 1usize..=4) {
        let n = a.nrows();
        let sell = SellCs::from_csr(&a, c, c * sigma_mul);
        let x: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) / 5.0 - 1.0).collect();
        let mut want = vec![0.0; n];
        spmv(&a, &x, &mut want);
        let mut got = vec![0.0; n];
        sell.spmv(&x, &mut got);
        prop_assert!(rel_err_inf(&got, &want) < 1e-12);
    }

    #[test]
    fn tuned_plan_spmv_equals_default(
        a in arb_matrix(),
        nthreads in 1usize..=4,
        probe in proptest::bool::ANY,
    ) {
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut want = vec![0.0; n];
        spmv(&a, &x, &mut want);
        let plan = TunedPlan::new(&a, TuneOptions { nthreads, probe, probe_reps: 1, ..Default::default() });
        let mut got = vec![0.0; n];
        plan.spmv(&x, &mut got);
        prop_assert!(
            rel_err_inf(&got, &want) < 1e-12,
            "variant={} nthreads={nthreads}", plan.variant()
        );
    }

    #[test]
    fn tuned_plan_power_and_sspmv_equal_default(
        a in arb_matrix(),
        k in 1usize..=5,
        nthreads in 1usize..=3,
    ) {
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) / 4.0 - 1.0).collect();
        let baseline = StandardMpk::new(&a, 1).unwrap();
        let plan = TunedPlan::new(&a, TuneOptions { nthreads, probe: false, probe_reps: 1, ..Default::default() });
        let want_p = baseline.power(&x0, k);
        let got_p = plan.power(&x0, k);
        prop_assert!(rel_err_inf(&got_p, &want_p) < 1e-12);
        let coeffs: Vec<f64> = (0..=k).map(|i| 1.0 - 0.5 * (i as f64)).collect();
        let want_s = baseline.sspmv(&coeffs, &x0);
        let got_s = plan.sspmv(&coeffs, &x0);
        prop_assert!(rel_err_inf(&got_s, &want_s) < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn probed_serial_plan_matches_scalar(a in arb_matrix()) {
        // With the probe on, any variant (including SELL-C-σ when it wins)
        // may be selected; the result must still match the reference.
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut want = vec![0.0; n];
        spmv(&a, &x, &mut want);
        let plan = TunedPlan::new(&a, TuneOptions { nthreads: 1, probe: true, probe_reps: 1, ..Default::default() });
        let mut got = vec![0.0; n];
        plan.spmv(&x, &mut got);
        prop_assert!(
            rel_err_inf(&got, &want) < 1e-12,
            "variant={}", plan.variant()
        );
    }
}
