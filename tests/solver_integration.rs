//! End-to-end solver integration: the downstream workloads (eigenvalues,
//! linear systems, Krylov bases, multigrid) running on FBMPK over suite
//! matrices, validated against independent references.

use fbmpk::{FbmpkOptions, FbmpkPlan, MpkEngine, StandardMpk};
use fbmpk_reorder::AbmcParams;
use fbmpk_solvers::chebyshev::{chebyshev_solve, gershgorin_bounds};
use fbmpk_solvers::multigrid::{poisson1d, TwoGrid1d};
use fbmpk_solvers::power::power_iteration;
use fbmpk_solvers::sstep::{conjugate_gradient, sstep_basis_monomial};
use fbmpk_sparse::spmv::spmv_alloc;
use fbmpk_sparse::vecops::{norm2, rel_err_inf};

fn parallel_plan(a: &fbmpk_sparse::Csr) -> FbmpkPlan {
    let mut opts = FbmpkOptions::parallel(2);
    opts.reorder = Some(AbmcParams { nblocks: 32, ..Default::default() });
    FbmpkPlan::new(a, opts).unwrap()
}

#[test]
fn power_iteration_on_fbmpk_matches_standard_on_suite_matrix() {
    let a = fbmpk_gen::suite::suite_entry("pwtk").unwrap().generate(0.002, 13);
    let n = a.nrows();
    let x0: Vec<f64> = (0..n).map(|i| 1.0 + 0.01 * (i % 29) as f64).collect();
    let e_std = StandardMpk::new(&a, 1).unwrap();
    let e_fb = parallel_plan(&a);
    let r_std = power_iteration(&e_std, &x0, 4, 1e-10, 100_000);
    let r_fb = power_iteration(&e_fb, &x0, 4, 1e-10, 100_000);
    assert!(r_std.converged && r_fb.converged);
    assert!(
        (r_std.eigenvalue - r_fb.eigenvalue).abs() < 1e-6 * r_std.eigenvalue.abs(),
        "{} vs {}",
        r_std.eigenvalue,
        r_fb.eigenvalue
    );
    // Residual check: ||A v - lambda v|| small relative to lambda.
    let av = e_std.spmv(&r_fb.eigenvector);
    let mut res = av.clone();
    fbmpk_sparse::vecops::axpy(-r_fb.eigenvalue, &r_fb.eigenvector, &mut res);
    assert!(norm2(&res) / r_fb.eigenvalue.abs() < 1e-4);
}

#[test]
fn chebyshev_solver_on_fbmpk_solves_spd_suite_matrix() {
    let a = fbmpk_gen::suite::suite_entry("afshell10").unwrap().generate(0.001, 13);
    let n = a.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) / 5.0 - 1.0).collect();
    let b = spmv_alloc(&a, &x_true);
    let (lo, hi) = gershgorin_bounds(&a);
    assert!(lo > 0.0, "suite generators are strictly diagonally dominant");
    let e = parallel_plan(&a);
    let sol = chebyshev_solve(&e, &b, lo, hi, 1e-10, 20_000).unwrap();
    assert!(sol.converged, "relres {}", sol.relres);
    assert!(rel_err_inf(&sol.x, &x_true) < 1e-6);
}

#[test]
fn cg_and_chebyshev_agree() {
    let a = fbmpk_gen::poisson::grid2d_5pt(12, 12);
    let b: Vec<f64> = (0..144).map(|i| ((i % 5) as f64) - 2.0).collect();
    let e = parallel_plan(&a);
    let cg = conjugate_gradient(&e, &b, 1e-11, 5000);
    let ch = chebyshev_solve(&e, &b, 0.05, 8.0, 1e-11, 50_000).unwrap();
    assert!(cg.converged && ch.converged);
    assert!(rel_err_inf(&cg.x, &ch.x) < 1e-7);
}

#[test]
fn sstep_basis_on_fbmpk_spans_krylov_space() {
    let a = fbmpk_gen::suite::suite_entry("Serena").unwrap().generate(0.0008, 13);
    let n = a.nrows();
    let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin() + 1.5).collect();
    let e = parallel_plan(&a);
    let basis = sstep_basis_monomial(&e, &v, 5);
    assert_eq!(basis.len(), 6);
    // Each basis vector equals a direct power computation.
    let e_ref = StandardMpk::new(&a, 1).unwrap();
    for (j, bj) in basis.iter().enumerate() {
        let want = e_ref.power(&v, j);
        assert!(rel_err_inf(bj, &want) < 1e-10, "power {j}");
    }
}

#[test]
fn multigrid_on_fbmpk_beats_jacobi_iteration_count() {
    let n = 127;
    let a = poisson1d(n);
    let e = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
    let mg = TwoGrid1d::new(&e, 2, 1);
    let b: Vec<f64> = (0..n).map(|i| ((i % 3) as f64) - 1.0).collect();
    let (x, cycles, relres) = mg.solve(&b, 1e-9, 100);
    assert!(relres <= 1e-9, "mg relres {relres} in {cycles} cycles");
    assert!(cycles < 30, "two-grid should converge in tens of cycles, took {cycles}");
    // Validate solution against CG.
    let cg = conjugate_gradient(&e, &b, 1e-12, 10_000);
    assert!(rel_err_inf(&x, &cg.x) < 1e-6);
}
