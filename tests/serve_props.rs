//! Serving-layer properties, driven through the real HTTP surface: a
//! live [`fbmpk_serve::Server`] on a loopback port, raw-TCP clients,
//! and assertions on status codes, typed `X-Fbmpk-*` headers, and
//! bit-exact response bodies.
//!
//! * Same-matrix batching is invisible: responses collected under
//!   concurrent load (where requests share one SpMM) are byte-identical
//!   to the same requests served sequentially, across k parities and
//!   kernel thread counts.
//! * Backpressure is typed: overflowing the admission queue yields 429
//!   with `Retry-After` and `X-Fbmpk-Shed: queue-full`, never a dropped
//!   connection.
//! * Deadlines are typed: an already-expired deadline yields 503 with
//!   `X-Fbmpk-Deadline: expired`, and the cached plan keeps serving.
//! * Faults are isolated (needs `--features fault-inject`): a request
//!   whose kernel panics gets its own 500 with `X-Fbmpk-Fault`, while
//!   concurrent requests on the very same plan complete normally and
//!   the server stays healthy afterwards.

use fbmpk_serve::client;
use fbmpk_serve::metrics::StatsSnapshot;
use fbmpk_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::time::Duration;

const T: Duration = Duration::from_secs(30);

fn server(kernel_threads: usize, handlers: usize, queue_cap: usize) -> Server {
    Server::start(ServeConfig { kernel_threads, handlers, queue_cap, ..Default::default() })
        .expect("start server")
}

fn power(
    addr: SocketAddr,
    matrix: &str,
    k: usize,
    x: &str,
    tenant: &str,
) -> client::ClientResponse {
    let body = client::kernel_body(matrix, k, x);
    client::request(addr, "POST", "/v1/power", &[("X-Tenant", tenant)], &body, T)
        .expect("transport must not fail")
}

fn stats(addr: SocketAddr) -> StatsSnapshot {
    let r = client::request(addr, "GET", "/v1/stats", &[], "", T).expect("stats");
    assert_eq!(r.status, 200);
    StatsSnapshot::parse(&r.body)
}

/// Concurrent same-matrix requests (which the server may coalesce into
/// one SpMM of any width) must return byte-identical bodies to the same
/// requests served one at a time — across even/odd k and thread counts.
#[test]
fn batched_responses_are_bit_identical_to_sequential() {
    for (threads, k) in [(1usize, 4usize), (1, 5), (2, 6), (2, 7)] {
        let mut srv = server(threads, 4, 64);
        let addr = srv.local_addr();
        let matrix = "grid:24:24";
        let xs: Vec<String> = (0..8).map(|i| format!("seed:{}", 100 + i)).collect();

        // Sequential reference: one outstanding request at a time.
        let reference: Vec<String> = xs
            .iter()
            .map(|x| {
                let r = power(addr, matrix, k, x, "ref");
                assert_eq!(r.status, 200, "k={k} threads={threads}: {}", r.body);
                r.body
            })
            .collect();

        // Concurrent burst: same requests, all in flight at once.
        let concurrent: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = xs
                .iter()
                .map(|x| scope.spawn(move || power(addr, matrix, k, x, "burst")))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let r = h.join().expect("client thread");
                    assert_eq!(r.status, 200, "k={k} threads={threads}: {}", r.body);
                    r.body
                })
                .collect()
        });

        for (i, (seq, conc)) in reference.iter().zip(&concurrent).enumerate() {
            assert_eq!(
                seq,
                conc,
                "x=seed:{} k={k} threads={threads}: batched body differs from sequential",
                100 + i
            );
        }
        srv.shutdown();
    }
}

/// Overflowing the bounded queue must produce typed 429s carrying a
/// parseable `Retry-After` and the shed-rung header — and every client
/// still gets *an* HTTP answer (the transport never just resets).
#[test]
fn queue_overflow_sheds_with_typed_429() {
    // One handler, one queue slot: a burst must overflow.
    let mut srv = server(1, 1, 1);
    let addr = srv.local_addr();
    // Warm the plan so the burst measures queueing, not plan building.
    assert_eq!(power(addr, "grid:48:48", 8, "ones", "warm").status, 200);

    let responses: Vec<client::ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..24)
            .map(|i| {
                scope.spawn(move || {
                    let body = client::kernel_body("grid:48:48", 8, "ones");
                    client::request(
                        addr,
                        "POST",
                        "/v1/power",
                        &[("X-Tenant", &format!("burst-{}", i % 3))],
                        &body,
                        T,
                    )
                    .expect("shed must arrive as a typed response, not a reset")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let sheds: Vec<_> = responses.iter().filter(|r| r.status == 429).collect();
    assert!(!sheds.is_empty(), "24-deep burst into a 1-slot queue must shed");
    for shed in &sheds {
        let retry: u64 = shed
            .header("retry-after")
            .expect("429 carries Retry-After")
            .parse()
            .expect("Retry-After is integral seconds");
        assert!((1..=60).contains(&retry), "Retry-After {retry} out of range");
        assert!(shed.header("x-fbmpk-shed").is_some(), "429 names its shed rung");
    }
    assert!(responses.iter().any(|r| r.status == 200), "some of the burst must be served");
    let snap = stats(addr);
    assert!(snap.shed_queue_full + snap.shed_tenant_quota + snap.shed_new_tenant > 0);
    srv.shutdown();
}

/// An already-expired deadline is a typed 503, and it must not poison
/// anything: the same plan serves the next request from cache.
#[test]
fn expired_deadline_is_typed_503_and_cache_keeps_serving() {
    let mut srv = server(1, 2, 16);
    let addr = srv.local_addr();
    let matrix = "grid:16:16";
    assert_eq!(power(addr, matrix, 4, "ones", "t").status, 200);
    let misses_before = stats(addr).cache_misses;

    let body = client::kernel_body(matrix, 4, "ones");
    let r = client::request(
        addr,
        "POST",
        "/v1/power",
        &[("X-Tenant", "t"), ("X-Deadline-Ms", "0")],
        &body,
        T,
    )
    .expect("typed deadline response");
    assert_eq!(r.status, 503);
    assert_eq!(r.header("x-fbmpk-deadline"), Some("expired"));

    let after = power(addr, matrix, 4, "ones", "t");
    assert_eq!(after.status, 200, "cache must keep serving after a deadline 503");
    let snap = stats(addr);
    assert_eq!(snap.cache_misses, misses_before, "no rebuild after the deadline 503");
    assert!(snap.deadline_expired >= 1);
    srv.shutdown();
}

/// A panicking kernel costs exactly the requests that hit it: they get
/// a typed 500, concurrent requests on the *same plan* complete, and
/// once the fault is gone the server is healthy — no restart needed.
#[cfg(feature = "fault-inject")]
#[test]
fn injected_panic_is_a_typed_500_isolated_to_its_requests() {
    use fbmpk_parallel::fault::{self, FaultPlan};

    let mut srv = server(2, 4, 64);
    let addr = srv.local_addr();
    let matrix = "grid:24:24";
    // Warm the plan before installing the fault (plan probing runs the
    // kernel, which would otherwise trip the panic during the build).
    assert_eq!(power(addr, matrix, 5, "ones", "t").status, 200);

    {
        let _guard = fault::install(FaultPlan::parse("panic:0:1").expect("fault spec"));
        let (faulty, healthy) = std::thread::scope(|scope| {
            // The MPK route runs the FBMPK kernel, where the fault
            // hooks live; the power route on the same plan does not.
            let faulty = scope.spawn(move || {
                let body = client::kernel_body(matrix, 5, "ones");
                client::request(addr, "POST", "/v1/mpk", &[("X-Tenant", "t")], &body, T)
                    .expect("panic must surface as a typed response")
            });
            let healthy: Vec<_> = (0..4)
                .map(|i| scope.spawn(move || power(addr, matrix, 5, &format!("seed:{i}"), "t")))
                .collect();
            (
                faulty.join().expect("client thread"),
                healthy.into_iter().map(|h| h.join().expect("client thread")).collect::<Vec<_>>(),
            )
        });
        assert_eq!(faulty.status, 500, "injected panic: {}", faulty.body);
        assert!(faulty.header("x-fbmpk-fault").is_some(), "500 is typed");
        for r in &healthy {
            assert_eq!(r.status, 200, "same-plan request caught the fault: {}", r.body);
        }
    }

    // Fault uninstalled: the same route recovers without intervention.
    let body = client::kernel_body(matrix, 5, "ones");
    let recovered = client::request(addr, "POST", "/v1/mpk", &[("X-Tenant", "t")], &body, T)
        .expect("recovered response");
    assert_eq!(recovered.status, 200, "server must be healthy after the fault: {}", recovered.body);
    assert!(stats(addr).worker_fault >= 1);
    srv.shutdown();
}
