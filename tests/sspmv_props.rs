//! Property-based tests of the SSpMV algebra: the kernel must satisfy the
//! ring identities of polynomial evaluation regardless of matrix
//! structure, coefficients, or execution configuration.

use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
use fbmpk_sparse::vecops::{axpy, rel_err_inf};
use fbmpk_sparse::{Coo, Csr};
use proptest::prelude::*;

/// Random sparse square matrix with bounded values (entries in [-1, 1],
/// dimension 2..=24, density ~25%).
fn arb_matrix() -> impl Strategy<Value = Csr> {
    (2usize..=24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..(n * n / 4).max(1)).prop_map(
            move |trips| {
                let mut coo = Coo::new(n, n);
                for (r, c, v) in trips {
                    coo.push(r, c, v).unwrap();
                }
                coo.to_csr()
            },
        )
    })
}

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fbmpk_power_equals_standard(a in arb_matrix(), k in 1usize..=6, seed in 0u64..1000) {
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| (((i as u64 + seed) * 2654435761 % 1000) as f64) / 500.0 - 1.0).collect();
        let baseline = StandardMpk::new(&a, 1).unwrap();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let want = baseline.power(&x0, k);
        let got = plan.power(&x0, k);
        prop_assert!(rel_err_inf(&got, &want) < 1e-10, "err {}", rel_err_inf(&got, &want));
    }

    #[test]
    fn sspmv_is_linear_in_coefficients(
        a in arb_matrix(),
        c1 in proptest::collection::vec(-2.0f64..2.0, 1..=5),
        c2 in proptest::collection::vec(-2.0f64..2.0, 1..=5),
    ) {
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) / 3.0 - 1.0).collect();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        // Pad to equal length.
        let len = c1.len().max(c2.len());
        let mut p1 = c1.clone(); p1.resize(len, 0.0);
        let mut p2 = c2.clone(); p2.resize(len, 0.0);
        let sum: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();
        let y1 = plan.sspmv(&p1, &x0);
        let y2 = plan.sspmv(&p2, &x0);
        let ysum = plan.sspmv(&sum, &x0);
        let mut y12 = y1.clone();
        axpy(1.0, &y2, &mut y12);
        prop_assert!(rel_err_inf(&ysum, &y12) < 1e-9);
    }

    #[test]
    fn sspmv_singleton_equals_power(a in arb_matrix(), i in 1usize..=5) {
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|j| ((j % 5) as f64) - 2.0).collect();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let mut coeffs = vec![0.0; i + 1];
        coeffs[i] = 1.0;
        let y = plan.sspmv(&coeffs, &x0);
        let p = plan.power(&x0, i);
        prop_assert!(rel_err_inf(&y, &p) < 1e-10);
    }

    #[test]
    fn power_composes(a in arb_matrix(), k1 in 1usize..=3, k2 in 1usize..=3) {
        // A^{k1+k2} x == A^{k2} (A^{k1} x)
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|j| 1.0 / (1.0 + j as f64)).collect();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let direct = plan.power(&x0, k1 + k2);
        let staged = plan.power(&plan.power(&x0, k1), k2);
        prop_assert!(rel_err_inf(&direct, &staged) < 1e-9);
    }

    #[test]
    fn krylov_last_equals_power(a in arb_matrix(), k in 1usize..=6) {
        let n = a.nrows();
        let x0 = vec![1.0; n];
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let basis = plan.krylov(&x0, k);
        prop_assert_eq!(basis.len(), k);
        let p = plan.power(&x0, k);
        prop_assert!(rel_err_inf(&basis[k - 1], &p) < 1e-10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identity_coefficients_reconstruct_x0(a in arb_matrix()) {
        let n = a.nrows();
        let x0: Vec<f64> = (0..n).map(|j| (j as f64 * 0.17).cos()).collect();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        // y = 1*x0 (alpha_0 only): no matrix work at all.
        let y = plan.sspmv(&[1.0], &x0);
        prop_assert_eq!(y, x0);
    }
}

/// Deterministic helper used by arb_vec (kept for future property tests).
#[allow(dead_code)]
fn unused(n: usize) -> impl Strategy<Value = Vec<f64>> {
    arb_vec(n)
}
