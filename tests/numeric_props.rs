//! Numeric property tests across the solver stack: triangular solves,
//! IC(0), and Krylov methods on randomly generated well-conditioned
//! systems — every path must invert what the matvec does.

use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
use fbmpk_solvers::bicgstab::bicgstab;
use fbmpk_solvers::gmres::gmres;
use fbmpk_solvers::iccg::{iccg, Ic0};
use fbmpk_solvers::sstep::conjugate_gradient;
use fbmpk_sparse::spmv::spmv_alloc;
use fbmpk_sparse::trisolve::{solve_lower, solve_lower_transpose, solve_upper};
use fbmpk_sparse::vecops::{norm2, rel_err_inf};
use fbmpk_sparse::{Csr, TriangularSplit};
use proptest::prelude::*;

/// Random strictly-diagonally-dominant symmetric matrix (hence SPD).
fn arb_spd() -> impl Strategy<Value = Csr> {
    (4usize..=40, 1u64..500).prop_map(|(n, seed)| {
        fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n,
            nnz_per_row: 5.0,
            bandwidth: (n / 2).max(2),
            seed,
        })
    })
}

/// Random diagonally dominant unsymmetric matrix.
fn arb_dd_unsym() -> impl Strategy<Value = Csr> {
    (27usize..=120, 1u64..500).prop_map(|(n, seed)| {
        let a = fbmpk_gen::cage::cage_like(fbmpk_gen::cage::CageParams { n, neighbors: 7, seed });
        let nn = a.nrows();
        let mut coo = fbmpk_sparse::Coo::new(nn, nn);
        for (r, c, v) in a.iter() {
            coo.push(r, c, -v).unwrap();
        }
        for i in 0..nn {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.to_csr()
    })
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n).map(|i| (((i as u64).wrapping_mul(seed + 3) % 17) as f64) / 8.0 - 1.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trisolve_inverts_triangular_matvec(a in arb_spd(), seed in 1u64..100) {
        let split = TriangularSplit::split(&a).unwrap();
        let n = split.n();
        let b = rhs(n, seed);
        // Lower solve: (L+D) x = b, then multiply back.
        let mut x = b.clone();
        solve_lower(&split.lower, &split.diag, &mut x);
        let mut back = vec![0.0; n];
        for r in 0..n {
            back[r] = split.diag[r] * x[r];
            for (&c, &v) in split.lower.row_cols(r).iter().zip(split.lower.row_vals(r)) {
                back[r] += v * x[c as usize];
            }
        }
        prop_assert!(rel_err_inf(&back, &b) < 1e-10);
        // Upper solve symmetric check.
        let mut xu = b.clone();
        solve_upper(&split.upper, &split.diag, &mut xu);
        let mut back_u = vec![0.0; n];
        for r in 0..n {
            back_u[r] = split.diag[r] * xu[r];
            for (&c, &v) in split.upper.row_cols(r).iter().zip(split.upper.row_vals(r)) {
                back_u[r] += v * xu[c as usize];
            }
        }
        prop_assert!(rel_err_inf(&back_u, &b) < 1e-10);
    }

    #[test]
    fn transpose_solve_consistent_with_materialized(a in arb_spd(), seed in 1u64..100) {
        let split = TriangularSplit::split(&a).unwrap();
        let b = rhs(split.n(), seed);
        let mut x1 = b.clone();
        solve_lower_transpose(&split.lower, &split.diag, &mut x1);
        let u = split.lower.transpose();
        let mut x2 = b.clone();
        solve_upper(&u, &split.diag, &mut x2);
        prop_assert!(rel_err_inf(&x1, &x2) < 1e-11);
    }

    #[test]
    fn ic0_preconditioner_is_spd_action(a in arb_spd(), seed in 1u64..100) {
        // z = M^{-1} r must satisfy <r, z> > 0 for r != 0 (M SPD), and
        // applying M back must reproduce r on the exact-pattern part.
        let ic = Ic0::factor(&a).unwrap();
        let n = a.nrows();
        let r = rhs(n, seed);
        prop_assume!(norm2(&r) > 0.0);
        let mut z = vec![0.0; n];
        ic.apply(&r, &mut z);
        let inner = fbmpk_sparse::vecops::dot(&r, &z);
        prop_assert!(inner > 0.0, "preconditioner not positive definite: {inner}");
    }

    #[test]
    fn krylov_solvers_agree_on_spd(a in arb_spd(), seed in 1u64..100) {
        let n = a.nrows();
        let x_true = rhs(n, seed);
        let b = spmv_alloc(&a, &x_true);
        prop_assume!(norm2(&b) > 1e-8);
        let e = StandardMpk::new(&a, 1).unwrap();
        let cg = conjugate_gradient(&e, &b, 1e-12, 50 * n);
        let gm = gmres(&e, &b, 30, 1e-12, 50 * n);
        prop_assert!(cg.converged && gm.converged);
        prop_assert!(rel_err_inf(&cg.x, &x_true) < 1e-7);
        prop_assert!(rel_err_inf(&gm.x, &x_true) < 1e-7);
        let ic = Ic0::factor(&a).unwrap();
        let pc = iccg(&e, &ic, &b, 1e-12, 50 * n);
        prop_assert!(pc.converged);
        prop_assert!(rel_err_inf(&pc.x, &x_true) < 1e-7);
    }

    #[test]
    fn unsymmetric_solvers_agree(a in arb_dd_unsym(), seed in 1u64..100) {
        let n = a.nrows();
        let x_true = rhs(n, seed);
        let b = spmv_alloc(&a, &x_true);
        prop_assume!(norm2(&b) > 1e-8);
        let e = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let bi = bicgstab(&e, &b, 1e-12, 100 * n).unwrap();
        let gm = gmres(&e, &b, 25, 1e-12, 100 * n);
        prop_assert!(bi.converged && gm.converged, "bi {} gm {}", bi.relres, gm.relres);
        prop_assert!(rel_err_inf(&bi.x, &x_true) < 1e-6);
        prop_assert!(rel_err_inf(&gm.x, &x_true) < 1e-6);
    }
}
