//! Property-based tests of the reordering substrate: permutation algebra,
//! ABMC schedule soundness, and spectral invariance of symmetric
//! permutation — the invariants the parallel kernel's safety rests on.

use fbmpk_reorder::{Abmc, AbmcParams, BlockingStrategy};
use fbmpk_sparse::spmv::spmv;
use fbmpk_sparse::{Coo, Csr, Permutation};
use proptest::prelude::*;

fn arb_square(max_n: usize) -> impl Strategy<Value = Csr> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..1.0), 0..n * 3).prop_map(move |trips| {
            let mut coo = Coo::new(n, n);
            for (r, c, v) in trips {
                coo.push(r, c, v).unwrap();
            }
            // Guarantee a nonempty diagonal so structure is non-degenerate.
            for i in 0..n {
                coo.push(i, i, 1.0).unwrap();
            }
            coo.to_csr()
        })
    })
}

/// Deterministic Fisher–Yates permutation from a seed.
fn seeded_perm(n: usize, seed: u64) -> Permutation {
    use rand::Rng;
    let mut rng = fbmpk_gen::rng(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    Permutation::from_order(&order).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permutation_roundtrip(a in arb_square(20), seed in 0u64..1000) {
        let n = a.nrows();
        let p = seeded_perm(n, seed);
        let b = p.permute_symmetric(&a).unwrap();
        let back = p.inverse().permute_symmetric(&b).unwrap();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn permutation_commutes_with_spmv(a in arb_square(16), seed in 0u64..100) {
        let n = a.nrows();
        let p = seeded_perm(n, seed);
        let x: Vec<f64> = (0..n).map(|i| (((i as u64 + seed) % 13) as f64) - 6.0).collect();
        let b = p.permute_symmetric(&a).unwrap();
        // B (P x) == P (A x)
        let mut ax = vec![0.0; n];
        spmv(&a, &x, &mut ax);
        let px = p.apply_vec_alloc(&x);
        let mut bpx = vec![0.0; n];
        spmv(&b, &px, &mut bpx);
        let pax = p.apply_vec_alloc(&ax);
        for (u, v) in bpx.iter().zip(&pax) {
            prop_assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn abmc_schedule_is_sound_for_random_matrices(
        a in arb_square(40),
        nblocks in 1usize..=12,
        contiguous in proptest::bool::ANY,
    ) {
        let strategy = if contiguous { BlockingStrategy::Contiguous } else { BlockingStrategy::Aggregated };
        let abmc = Abmc::new(&a, AbmcParams { nblocks, strategy, ..Default::default() });
        let b = abmc.apply(&a);
        // The property the parallel sweeps rely on: no entry joins two
        // same-color blocks.
        prop_assert!(abmc.validate_against(&b).is_ok());
        // Blocks and colors partition the rows.
        let rows: usize = (0..abmc.nblocks()).map(|blk| abmc.block_rows(blk).len()).sum();
        prop_assert_eq!(rows, a.nrows());
        let blocks: usize = (0..abmc.ncolors()).map(|c| abmc.color_blocks(c).len()).sum();
        prop_assert_eq!(blocks, abmc.nblocks());
    }

    #[test]
    fn abmc_permutation_preserves_entry_multiset(a in arb_square(24), nblocks in 1usize..=8) {
        let abmc = Abmc::new(&a, AbmcParams { nblocks, ..Default::default() });
        let b = abmc.apply(&a);
        prop_assert_eq!(a.nnz(), b.nnz());
        // Sorted value multisets agree.
        let mut va: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
        let mut vb: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
        va.sort_unstable();
        vb.sort_unstable();
        prop_assert_eq!(va, vb);
    }

    #[test]
    fn rcm_produces_valid_permutation(a in arb_square(30)) {
        let p = fbmpk_reorder::rcm(&a);
        prop_assert_eq!(p.len(), a.nrows());
        let b = p.permute_symmetric(&a).unwrap();
        prop_assert_eq!(b.nnz(), a.nnz());
        let back = p.inverse().permute_symmetric(&b).unwrap();
        prop_assert_eq!(back, a);
    }
}

#[test]
fn level_schedule_covers_split_triangles() {
    let a = fbmpk_gen::poisson::grid2d_5pt(6, 6);
    let split = fbmpk_sparse::TriangularSplit::split(&a).unwrap();
    let lo = fbmpk_reorder::levels::level_schedule_lower(&split.lower);
    let up = fbmpk_reorder::levels::level_schedule_upper(&split.upper);
    assert_eq!(lo.order.len(), 36);
    assert_eq!(up.order.len(), 36);
    assert!(lo.max_width() >= 1 && up.max_width() >= 1);
}
