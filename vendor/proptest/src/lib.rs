//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`bool::ANY`], the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), and the
//! `prop_assert*` / `prop_assume` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and index instead of a minimized input), and value streams are
//! deterministic per test name rather than per-run random.

pub mod test_runner {
    //! Test configuration, case errors, and the deterministic RNG.

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; does not count as a run case.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic generator state for strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream as a pure function of the test name, so runs
        /// are reproducible without a persisted failure file.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no intermediate `ValueTree`
    /// (shrinking is not supported); `generate` directly yields a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy producing exactly `value` (cloned per case).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(usize, u64, u32, u16, u8);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification for [`vec`]: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` / `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions that run a body against generated inputs.
///
/// Supported grammar (the subset upstream tests in this workspace use):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in collection::vec(0f64..1.0, 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut ran: u32 = 0;
                let mut rejected: u32 = 0;
                while ran < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            // Mirror proptest's global rejection cap so an
                            // over-restrictive prop_assume! fails loudly
                            // instead of looping forever.
                            if rejected > config.cases.saturating_mul(16).max(1024) {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections ({}): {}",
                                    stringify!($name), rejected, why
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {} (deterministic seed from test name): {}",
                                stringify!($name), ran, msg
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right, format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Rejects the current case (does not count toward `cases`) when `cond`
/// is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u64..=4, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..=8).prop_flat_map(|n| {
            crate::collection::vec(0usize..100, n).prop_map(move |v| (n, v))
        })) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
            prop_assert!(items.iter().all(|&i| i < 100));
        }

        #[test]
        fn tuples_and_bool(t in (0usize..5, 0usize..5, -1.0f64..1.0), b in crate::bool::ANY) {
            let (r, c, v) = t;
            prop_assert!(r < 5 && c < 5);
            prop_assert!((-1.0..1.0).contains(&v));
            // `b` must be a real bool drawn from the generator.
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn vec_exact_size() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("vec_exact_size");
        let s = crate::collection::vec(0usize..10, 7usize);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        // Run the expansion by hand so the panic message is observable.
        crate::__proptest_cases!(
            crate::test_runner::Config::with_cases(4);
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        );
        always_fails();
    }
}
