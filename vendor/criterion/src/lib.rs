//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches
//! use: `Criterion`, `benchmark_group` with `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId::new`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: per benchmark it warms up, picks
//! an iteration batch so one sample lasts ≳1 ms, takes `sample_size`
//! samples, and prints min/median/mean per iteration. No HTML reports,
//! no statistical regression analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a benchmark as `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), param) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { label: param.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `self.iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Returns self unchanged; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\n== group: {name} ==");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_benchmark(&id.to_string(), self.sample_size, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up and batch calibration: grow the iteration count until one
    // sample takes at least ~1 ms so short kernels are measurable.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        sample_size,
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let data = vec![1.0f64; 64];
        group.bench_function("sum", |b| b.iter(|| data.iter().sum::<f64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<f64>())
        });
        group.finish();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(7), 7);
    }

    #[test]
    fn group_macro_expands() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
