//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the no-poison `lock()` / `wait(&mut guard)` API surface the
//! workspace uses. Poisoned std locks are transparently recovered (the
//! worker pool aborts on panic anyway, so poisoning cannot leak broken
//! state).

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the inner `Option` lets [`Condvar::wait`]
/// temporarily take std's own guard while blocked.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with parking_lot's in-place `wait(&mut guard)`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is re-acquired (into the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already waiting");
        let reacquired = self.inner.wait(std_guard).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        drop(started);
        h.join().unwrap();
    }

    #[test]
    fn contended_counter() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
