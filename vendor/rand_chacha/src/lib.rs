//! Offline stand-in for `rand_chacha`.
//!
//! Provides [`ChaCha8Rng`] with the same trait surface the workspace uses
//! (`RngCore` + `SeedableRng`). The generator is a genuine ChaCha8 stream
//! cipher core keyed from the 64-bit seed, so streams are deterministic,
//! high-quality, and platform-independent — but they do **not** match
//! upstream `rand_chacha` word-for-word (the upstream key-expansion from
//! `seed_from_u64` goes through rand's PCG; ours uses the seed directly).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8-based generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, s) in w.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.block = w;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // "expand 32-byte k" constants, key = seed repeated with distinct
        // per-word tweaks so different seeds diverge in every key word.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        let lo = seed as u32;
        let hi = (seed >> 32) as u32;
        for (i, w) in state[4..12].iter_mut().enumerate() {
            let tweak = (i as u32).wrapping_mul(0x9E37_79B9);
            *w = if i % 2 == 0 { lo ^ tweak } else { hi ^ tweak.rotate_left(13) };
        }
        // counter = 0, nonce = 0.
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn stream_continues_across_blocks() {
        // More than one 16-word block must not repeat.
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let head: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let next: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(head, next);
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let i = r.gen_range(0usize..10);
        assert!(i < 10);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            sum += r.gen::<f64>();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
