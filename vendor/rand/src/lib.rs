//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the *subset* of the rand 0.8 API the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`RngCore`] and
//! [`SeedableRng`]. Generators seeded with the same value produce the same
//! stream, which is the only property the matrix generators rely on; the
//! streams do **not** match upstream rand bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Core trait for generator state: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value from `word`(s) of an RNG.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, span)` by rejection on the top of the u64
/// space (span is always small here, so the rejection loop is cheap).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` ([0, 1) for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Minimal counterpart of `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
